package phase

import (
	"testing"

	"github.com/incprof/incprof/internal/cluster"
	"github.com/incprof/incprof/internal/interval"
)

func TestMergeDuplicatePhasesCombinesSameSiteSets(t *testing.T) {
	// LAMMPS-shaped: compute intervals in two clusters separated by
	// build bursts, both selecting the same compute loop site.
	var profs []interval.Profile
	for i := 0; i < 10; i++ {
		profs = append(profs, mkProfile(i, "compute", 1.0, 0))
	}
	for i := 10; i < 13; i++ {
		profs = append(profs, mkProfile(i, "build", 1.0, 1))
	}
	for i := 13; i < 23; i++ {
		profs = append(profs, mkProfile(i, "compute", 1.0, 0))
	}
	det, err := Detect(profs, Options{Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Force a duplicate situation if clustering merged them already:
	// split the compute phase manually to exercise the merge.
	if len(det.Phases) == 2 {
		var computePhase Phase
		for _, p := range det.Phases {
			if p.Sites[0].Function == "compute" {
				computePhase = p
			}
		}
		first := computePhase
		second := computePhase
		first.Intervals = computePhase.Intervals[:10]
		second.Intervals = computePhase.Intervals[10:]
		second.ID = len(det.Phases)
		var rebuilt []Phase
		for _, p := range det.Phases {
			if p.Sites[0].Function == "compute" {
				rebuilt = append(rebuilt, first)
			} else {
				rebuilt = append(rebuilt, p)
			}
		}
		det.Phases = append(rebuilt, second)
	}
	before := len(det.Phases)
	removed := det.MergeDuplicatePhases()
	if removed == 0 {
		t.Fatalf("nothing merged from %d phases", before)
	}
	if got := len(det.Phases); got != before-removed {
		t.Fatalf("phases = %d, want %d", got, before-removed)
	}
	// The merged compute phase holds all 20 compute intervals with 100%
	// coverage.
	for _, p := range det.Phases {
		if p.Sites[0].Function == "compute" {
			if len(p.Intervals) != 20 {
				t.Fatalf("merged intervals = %d, want 20", len(p.Intervals))
			}
			if p.Sites[0].PhasePct != 100 {
				t.Fatalf("recomputed PhasePct = %v", p.Sites[0].PhasePct)
			}
			if p.Sites[0].AppPct < 86 || p.Sites[0].AppPct > 88 { // 20/23
				t.Fatalf("recomputed AppPct = %v", p.Sites[0].AppPct)
			}
		}
	}
	// IDs renumbered by first occurrence.
	for i, p := range det.Phases {
		if p.ID != i {
			t.Fatalf("IDs not renumbered: %+v", det.Phases)
		}
	}
}

func TestMergeDifferentSitesUntouched(t *testing.T) {
	profs := twoPhaseWorkload()
	det, err := Detect(profs, Options{Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	before := len(det.Phases)
	if removed := det.MergeDuplicatePhases(); removed != 0 {
		t.Fatalf("merged %d distinct phases", removed)
	}
	if len(det.Phases) != before {
		t.Fatal("phase count changed")
	}
}

func TestMergeEmptySiteSetsNeverMerge(t *testing.T) {
	det := &Detection{
		Profiles: twoPhaseWorkload(),
		Phases: []Phase{
			{ID: 0, Intervals: []int{0}},
			{ID: 1, Intervals: []int{1}},
		},
	}
	if removed := det.MergeDuplicatePhases(); removed != 0 {
		t.Fatal("siteless phases merged")
	}
}

func TestMergeSinglePhaseNoop(t *testing.T) {
	det := &Detection{Phases: []Phase{{ID: 0}}}
	if det.MergeDuplicatePhases() != 0 {
		t.Fatal("single phase merged with itself")
	}
}

// Package phase implements the paper's phase detection and instrumentation
// site identification (paper §V).
//
// Detection clusters per-interval profiles with k-means for k = 1..KMax and
// selects k with the Elbow method (Silhouette and DBSCAN variants exist for
// the ablations); each cluster is a phase. Algorithm 1 then greedily selects
// per-phase instrumentation sites: walking the phase's intervals from the
// most representative (closest to centroid) outward, each uncovered interval
// contributes the active function with the fewest calls (ties broken by
// higher rank), tagged Body if it was called within the interval and Loop if
// it only continued executing, until the coverage threshold (95% by default)
// is reached.
package phase

import (
	"fmt"
	"sort"
	"time"

	"github.com/incprof/incprof/internal/cluster"
	"github.com/incprof/incprof/internal/interval"
	"github.com/incprof/incprof/internal/obs"
)

// InstType distinguishes the two instrumentation placements of §V-B.
type InstType int

const (
	// Body means begin/end heartbeats wrap the function body.
	Body InstType = iota
	// Loop means the heartbeat belongs inside a loop within the function,
	// chosen when the function runs across intervals without being
	// called (long-lived).
	Loop
)

// String names the instrumentation type as the paper's tables do.
func (t InstType) String() string {
	switch t {
	case Body:
		return "body"
	case Loop:
		return "loop"
	default:
		return fmt.Sprintf("InstType(%d)", int(t))
	}
}

// Site is one selected instrumentation site.
type Site struct {
	// Function is the function to instrument.
	Function string
	// PromotedFrom records the originally-selected function when
	// call-graph site promotion replaced it (see package callgraph);
	// empty otherwise.
	PromotedFrom string
	// Type is the placement (body or loop).
	Type InstType
	// PhasePct is the percentage of the phase's intervals this site
	// covers (an interval is credited to its earliest-selected active
	// site; activity is judged by ActivityFunction so the number stays
	// meaningful across call-graph promotion).
	PhasePct float64
	// AppPct is the percentage of the entire run's intervals this site
	// covers within this phase.
	AppPct float64
}

// ActivityFunction returns the function whose interval activity this site
// represents: the originally-selected function when the site was promoted
// up the call graph (the ancestor may have negligible self time of its
// own), otherwise the site function itself.
func (s *Site) ActivityFunction() string {
	if s.PromotedFrom != "" {
		return s.PromotedFrom
	}
	return s.Function
}

// Phase is one detected phase (one cluster of intervals).
type Phase struct {
	// ID is the phase number; phases are ordered by first occurrence in
	// time.
	ID int
	// Intervals lists member interval indices in ascending order.
	Intervals []int
	// Centroid is the phase's center in feature space.
	Centroid []float64
	// Sites are the selected instrumentation sites in selection order.
	Sites []Site
}

// Duration returns the phase's total time given the collection interval.
func (p *Phase) Duration(collectionInterval time.Duration) time.Duration {
	return time.Duration(len(p.Intervals)) * collectionInterval
}

// Selection chooses how k is picked from the k-means sweep.
type Selection int

const (
	// Elbow is the paper's method: knee of the WCSS curve.
	Elbow Selection = iota
	// Silhouette picks the k maximizing the mean silhouette coefficient.
	Silhouette
)

// String names the selection method.
func (s Selection) String() string {
	switch s {
	case Elbow:
		return "elbow"
	case Silhouette:
		return "silhouette"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// Algorithm chooses the clustering algorithm (A2 ablation).
type Algorithm int

const (
	// KMeansAlg is the paper's choice.
	KMeansAlg Algorithm = iota
	// DBSCANAlg is the density-based baseline the paper tried and
	// rejected.
	DBSCANAlg
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case KMeansAlg:
		return "kmeans"
	case DBSCANAlg:
		return "dbscan"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures Detect.
type Options struct {
	// KMax bounds the k-means sweep; 0 means 8, the paper's maximum
	// ("we have not had any applications where the number of phases
	// discovered is greater than five, so eight as a maximum has worked
	// well").
	KMax int
	// CoverageThreshold stops site selection once this fraction of a
	// phase's intervals is covered; 0 means 0.95, the paper's setting.
	CoverageThreshold float64
	// Selection picks k from the sweep (default Elbow).
	Selection Selection
	// Algorithm picks the clustering algorithm (default k-means).
	Algorithm Algorithm
	// Features configures the feature matrix (default: sampled self
	// time, the paper's choice).
	Features interval.FeatureOptions
	// Cluster configures k-means (seed, restarts, and the Parallelism
	// worker-pool bound the sweep and silhouette scoring share).
	Cluster cluster.Options
	// DBSCANMinPts applies to DBSCANAlg; 0 means 3.
	DBSCANMinPts int
	// Span, when non-nil, parents the tracing spans Detect records.
	Span *obs.Span
}

// WithDefaults returns the options with the paper's defaults filled in —
// the exact normalization Detect applies, exported so the streaming engine's
// intermediate refreshes resolve KMax, the coverage threshold, and DBSCAN
// minPts identically to the batch path.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.KMax == 0 {
		o.KMax = 8
	}
	if o.CoverageThreshold == 0 {
		o.CoverageThreshold = 0.95
	}
	if o.DBSCANMinPts == 0 {
		o.DBSCANMinPts = 3
	}
	return o
}

// Detection is the full phase-analysis output.
type Detection struct {
	// Phases holds the detected phases ordered by first occurrence.
	Phases []Phase
	// K is the selected number of clusters.
	K int
	// WCSS is the k-means sweep curve (indexed by k-1); empty for
	// DBSCAN.
	WCSS []float64
	// Matrix is the feature matrix the clustering ran on.
	Matrix interval.Matrix
	// Profiles are the interval profiles analyzed.
	Profiles []interval.Profile
	// Options echoes the effective configuration.
	Options Options
	// NoiseIntervals lists intervals DBSCAN labeled as noise (empty for
	// k-means).
	NoiseIntervals []int
}

// Detect runs the full pipeline over per-interval profiles.
func Detect(profiles []interval.Profile, opts Options) (*Detection, error) {
	opts = opts.withDefaults()
	if len(profiles) == 0 {
		return nil, fmt.Errorf("phase: no interval profiles")
	}
	sp := obs.Under(opts.Span, "phase.detect", 0)
	sp.SetInt("profiles", int64(len(profiles))).
		SetStr("algorithm", opts.Algorithm.String()).
		SetStr("selection", opts.Selection.String())
	defer sp.End()

	feat := sp.Child("interval.features")
	// The batch path builds the flat CSR form directly: clustering and site
	// selection consume it natively, so nothing densifies (DESIGN.md §14).
	m := interval.FeaturesCSR(profiles, opts.Features)
	feat.SetInt("dims", int64(m.Dims())).End()
	return detectMatrix(profiles, m, opts, sp)
}

// DetectMatrix is Detect over a prebuilt feature matrix: clustering, k
// selection, phase assembly, and Algorithm 1 run exactly as in Detect, but
// the caller supplies the matrix. The streaming engine uses it so that its
// incrementally-built matrix flows through the one detection code path —
// fed the matrix Features would have built, DetectMatrix's output is
// byte-identical to Detect's.
func DetectMatrix(profiles []interval.Profile, m interval.Matrix, opts Options) (*Detection, error) {
	opts = opts.withDefaults()
	if len(profiles) == 0 {
		return nil, fmt.Errorf("phase: no interval profiles")
	}
	if m.NumRows() != len(profiles) {
		return nil, fmt.Errorf("phase: matrix has %d rows for %d profiles", m.NumRows(), len(profiles))
	}
	sp := obs.Under(opts.Span, "phase.detect", 0)
	sp.SetInt("profiles", int64(len(profiles))).
		SetStr("algorithm", opts.Algorithm.String()).
		SetStr("selection", opts.Selection.String())
	defer sp.End()
	return detectMatrix(profiles, m, opts, sp)
}

// detectMatrix is the shared core of Detect and DetectMatrix; opts must have
// defaults applied and sp is the enclosing phase.detect span.
func detectMatrix(profiles []interval.Profile, m interval.Matrix, opts Options, sp *obs.Span) (*Detection, error) {
	if m.Dims() == 0 {
		return nil, fmt.Errorf("phase: no active functions in any interval")
	}
	det := &Detection{Matrix: m, Profiles: profiles, Options: opts}

	var assign []int
	var centroids [][]float64
	switch opts.Algorithm {
	case KMeansAlg:
		copts := opts.Cluster
		if copts.Span == nil {
			copts.Span = sp
		}
		var results []*cluster.Result
		var err error
		if m.Sparse != nil {
			results, err = cluster.SweepCSR(m.Sparse, opts.KMax, copts)
		} else {
			results, err = cluster.Sweep(m.Rows, opts.KMax, copts)
		}
		if err != nil {
			return nil, err
		}
		det.WCSS = make([]float64, len(results))
		for i, r := range results {
			det.WCSS[i] = r.WCSS
		}
		sel := sp.Child("phase.select")
		var best *cluster.Result
		switch {
		case opts.Selection == Silhouette && m.Sparse != nil:
			best = cluster.SelectSilhouetteCSR(m.Sparse, results, opts.Cluster.Parallelism)
		case opts.Selection == Silhouette:
			best = cluster.SelectSilhouetteP(m.Rows, results, opts.Cluster.Parallelism)
		default:
			best = cluster.SelectElbow(results)
		}
		sel.SetStr("method", opts.Selection.String()).SetInt("k", int64(best.K)).End()
		det.K = best.K
		assign = best.Assign
		centroids = best.Centroids
	case DBSCANAlg:
		var eps float64
		var labels []int
		var k int
		var err error
		if m.Sparse != nil {
			eps = cluster.EstimateEpsCSR(m.Sparse, opts.DBSCANMinPts, 0.9)
			labels, k, err = cluster.DBSCANCSR(m.Sparse, eps, opts.DBSCANMinPts)
		} else {
			eps = cluster.EstimateEps(m.Rows, opts.DBSCANMinPts, 0.9)
			labels, k, err = cluster.DBSCAN(m.Rows, eps, opts.DBSCANMinPts)
		}
		if err != nil {
			return nil, err
		}
		det.K = k
		assign = labels
		centroids = dbscanCentroidsMatrix(m, labels, k)
		for i, l := range labels {
			if l == cluster.Noise {
				det.NoiseIntervals = append(det.NoiseIntervals, i)
			}
		}
	default:
		return nil, fmt.Errorf("phase: unknown algorithm %v", opts.Algorithm)
	}

	det.Phases = buildPhases(profiles, assign, centroids, det.K)
	sites := sp.Child("phase.sites")
	total := len(profiles)
	nsites := 0
	for i := range det.Phases {
		selectSites(&det.Phases[i], profiles, m, opts.CoverageThreshold, total)
		nsites += len(det.Phases[i].Sites)
	}
	sites.SetInt("phases", int64(len(det.Phases))).SetInt("sites", int64(nsites)).End()
	sp.SetInt("k", int64(det.K))
	return det, nil
}

// dbscanCentroidsMatrix computes cluster means for DBSCAN labels on either
// matrix backing so that Algorithm 1's centroid-distance ordering applies
// unchanged. The CSR accumulation skips only exact-zero cells; a skipped
// x += 0 cannot change x (accumulators never hold -0: sums starting at +0
// stay +0 under zero addends), so both backings produce identical bits.
func dbscanCentroidsMatrix(m interval.Matrix, labels []int, k int) [][]float64 {
	if k == 0 {
		return nil
	}
	dim := m.Dims()
	cents := make([][]float64, k)
	counts := make([]int, k)
	for c := range cents {
		cents[c] = make([]float64, dim)
	}
	for i, l := range labels {
		if l < 0 {
			continue
		}
		counts[l]++
		if m.Sparse != nil {
			vals, cols := m.Sparse.Row(i)
			for t, d := range cols {
				cents[l][d] += vals[t]
			}
		} else {
			for d, v := range m.Rows[i] {
				cents[l][d] += v
			}
		}
	}
	for c := range cents {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		for d := range cents[c] {
			cents[c][d] *= inv
		}
	}
	return cents
}

// BuildPhases groups intervals by cluster assignment and orders phases by
// first occurrence in time, renumbering IDs accordingly — the phase-assembly
// step of Detect, exported so the streaming engine's intermediate refreshes
// assemble phases through the same code as the batch path. Sites are not
// selected; see SelectPhaseSites.
func BuildPhases(profiles []interval.Profile, assign []int, centroids [][]float64, k int) []Phase {
	return buildPhases(profiles, assign, centroids, k)
}

// buildPhases groups intervals by cluster and orders phases by first
// occurrence in time, renumbering IDs accordingly.
func buildPhases(profiles []interval.Profile, assign []int, centroids [][]float64, k int) []Phase {
	members := make([][]int, k)
	for i, c := range assign {
		if c < 0 {
			continue // DBSCAN noise
		}
		members[c] = append(members[c], i)
	}
	type ordered struct {
		cluster int
		first   int
	}
	var order []ordered
	for c := 0; c < k; c++ {
		if len(members[c]) == 0 {
			continue
		}
		order = append(order, ordered{c, members[c][0]})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].first < order[j].first })
	phases := make([]Phase, 0, len(order))
	for id, o := range order {
		var centroid []float64
		if o.cluster < len(centroids) {
			centroid = centroids[o.cluster]
		}
		phases = append(phases, Phase{ID: id, Intervals: members[o.cluster], Centroid: centroid})
	}
	return phases
}

package phase

import (
	"testing"
	"time"

	"github.com/incprof/incprof/internal/cluster"
	"github.com/incprof/incprof/internal/interval"
)

// mkProfile builds an interval profile from (fn, seconds, calls) triples.
func mkProfile(idx int, entries ...any) interval.Profile {
	p := interval.Profile{
		Index:     idx,
		Start:     time.Duration(idx) * time.Second,
		End:       time.Duration(idx+1) * time.Second,
		Self:      map[string]time.Duration{},
		ExactSelf: map[string]time.Duration{},
		Calls:     map[string]int64{},
	}
	for i := 0; i < len(entries); i += 3 {
		fn := entries[i].(string)
		sec := entries[i+1].(float64)
		calls := entries[i+2].(int)
		d := time.Duration(sec * float64(time.Second))
		p.Self[fn] = d
		p.ExactSelf[fn] = d
		if calls > 0 {
			p.Calls[fn] = int64(calls)
		}
	}
	return p
}

// twoPhaseWorkload: 10 intervals of "init" (called a few times per interval,
// with a chatty "aux" helper alongside) then 20 of "solve" (called once at
// the start of its phase, then running uninterrupted — a loop site).
func twoPhaseWorkload() []interval.Profile {
	var profs []interval.Profile
	for i := 0; i < 10; i++ {
		profs = append(profs, mkProfile(i, "init", 0.9, 3, "aux", 0.1, 500))
	}
	for i := 10; i < 30; i++ {
		if i == 10 {
			// Transition interval: solve is called here and shares
			// the interval with the tail of initialization.
			profs = append(profs, mkProfile(i, "solve", 0.7, 1, "aux", 0.3, 100))
			continue
		}
		profs = append(profs, mkProfile(i, "solve", 1.0, 0))
	}
	return profs
}

func TestDetectTwoPhases(t *testing.T) {
	det, err := Detect(twoPhaseWorkload(), Options{Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if det.K != 2 {
		t.Fatalf("K = %d, want 2; wcss = %v", det.K, det.WCSS)
	}
	if len(det.Phases) != 2 {
		t.Fatalf("phases = %d", len(det.Phases))
	}
	p0, p1 := det.Phases[0], det.Phases[1]
	// Temporal ordering: phase 0 is the init phase.
	if p0.ID != 0 || p0.Intervals[0] != 0 {
		t.Fatalf("phase 0 starts at interval %d", p0.Intervals[0])
	}
	if len(p0.Intervals) != 10 || len(p1.Intervals) != 20 {
		t.Fatalf("phase sizes = %d, %d", len(p0.Intervals), len(p1.Intervals))
	}
}

func TestAlgorithm1BodyVsLoopTagging(t *testing.T) {
	det, err := Detect(twoPhaseWorkload(), Options{Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var initSite, solveSite *Site
	for i := range det.Phases {
		for j := range det.Phases[i].Sites {
			s := &det.Phases[i].Sites[j]
			switch s.Function {
			case "init":
				initSite = s
			case "solve":
				solveSite = s
			}
		}
	}
	if initSite == nil || solveSite == nil {
		t.Fatalf("sites not found: %+v", det.Phases)
	}
	if initSite.Type != Body {
		t.Fatalf("init tagged %v, want body (called every interval)", initSite.Type)
	}
	if solveSite.Type != Loop {
		t.Fatalf("solve tagged %v, want loop (runs without calls in the representative intervals)", solveSite.Type)
	}
}

func TestAlgorithm1PrefersFewerCalls(t *testing.T) {
	// Both functions active in every interval; "worker" has few calls,
	// "getter" has thousands — the paper's utility-function avoidance.
	var profs []interval.Profile
	for i := 0; i < 10; i++ {
		profs = append(profs, mkProfile(i, "worker", 0.6, 2, "getter", 0.4, 5000))
	}
	det, err := Detect(profs, Options{Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if det.K != 1 {
		t.Fatalf("K = %d, want 1", det.K)
	}
	sites := det.Phases[0].Sites
	if len(sites) != 1 || sites[0].Function != "worker" {
		t.Fatalf("sites = %+v, want just worker", sites)
	}
	if sites[0].PhasePct != 100 || sites[0].AppPct != 100 {
		t.Fatalf("coverage = %v/%v, want 100/100", sites[0].PhasePct, sites[0].AppPct)
	}
}

func TestAlgorithm1RankBreaksCallTies(t *testing.T) {
	// Equal calls; "steady" is active in all intervals (rank 1), "flaky"
	// only in the centroid-nearest ones (lower rank). With equal calls,
	// the higher-rank function wins.
	var profs []interval.Profile
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			profs = append(profs, mkProfile(i, "steady", 0.5, 1, "flaky", 0.5, 1))
		} else {
			profs = append(profs, mkProfile(i, "steady", 0.5, 1, "other", 0.5, 1))
		}
	}
	det, err := Detect(profs, Options{KMax: 1, Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sites := det.Phases[0].Sites
	if len(sites) == 0 || sites[0].Function != "steady" {
		t.Fatalf("sites = %+v, want steady first (rank 1)", sites)
	}
}

func TestAlgorithm1CoverageThresholdSkipsOutliers(t *testing.T) {
	// 19 intervals dominated by "main"; 1 outlier interval where only
	// "rare" is active. With the default 95% threshold, the single
	// outlier (5%) is not given its own site.
	var profs []interval.Profile
	for i := 0; i < 19; i++ {
		profs = append(profs, mkProfile(i, "main", 1.0, 3))
	}
	profs = append(profs, mkProfile(19, "rare", 1.0, 1))
	det, err := Detect(profs, Options{KMax: 1, Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sites := det.Phases[0].Sites
	if len(sites) != 1 || sites[0].Function != "main" {
		t.Fatalf("sites = %+v, want only main (rare is an outlier under 95%% threshold)", sites)
	}
	// With a 100% threshold the outlier does get a site.
	det2, err := Detect(profs, Options{KMax: 1, CoverageThreshold: 1.0, Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(det2.Phases[0].Sites) != 2 {
		t.Fatalf("threshold=1.0 sites = %+v, want main and rare", det2.Phases[0].Sites)
	}
}

func TestAlgorithm1DedupesFunctionTypePairs(t *testing.T) {
	// The same function can be selected once as body and once as loop in
	// the same phase only via distinct (fn, type) pairs; identical pairs
	// must not repeat.
	var profs []interval.Profile
	for i := 0; i < 6; i++ {
		profs = append(profs, mkProfile(i, "f", 1.0, 1))
	}
	det, err := Detect(profs, Options{KMax: 1, CoverageThreshold: 1.0, Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(det.Phases[0].Sites); n != 1 {
		t.Fatalf("sites = %d, want 1 (deduped)", n)
	}
}

func TestSameFunctionDifferentTypesAcrossPhases(t *testing.T) {
	// Mimics Graph500's run_bfs: one phase of intervals where f is
	// called (body) and another where it continues running (loop).
	var profs []interval.Profile
	for i := 0; i < 10; i++ {
		// Called intervals also feature heavy helper activity,
		// separating them in feature space.
		profs = append(profs, mkProfile(2*i, "f", 0.3, 4, "helper", 0.7, 100))
		profs = append(profs, mkProfile(2*i+1, "f", 1.0, 0))
	}
	det, err := Detect(profs, Options{Cluster: cluster.Options{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if det.K < 2 {
		t.Fatalf("K = %d, want >= 2", det.K)
	}
	types := map[InstType]bool{}
	for _, p := range det.Phases {
		for _, s := range p.Sites {
			if s.Function == "f" {
				types[s.Type] = true
			}
		}
	}
	if !types[Loop] {
		t.Fatalf("expected f to appear as a loop site in the continuing phase; phases: %+v", det.Phases)
	}
}

func TestPhasePctPartitionsPhase(t *testing.T) {
	// Two sites within one phase: the credited percentages sum to <= 100
	// and cover the whole phase when the threshold is 1.0.
	var profs []interval.Profile
	for i := 0; i < 15; i++ {
		profs = append(profs, mkProfile(i, "a", 1.0, 1))
	}
	for i := 15; i < 20; i++ {
		profs = append(profs, mkProfile(i, "b", 1.0, 1))
	}
	det, err := Detect(profs, Options{KMax: 1, CoverageThreshold: 1.0, Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	p := det.Phases[0]
	var sum float64
	for _, s := range p.Sites {
		sum += s.PhasePct
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("PhasePct sum = %v, want 100", sum)
	}
	if cov := p.Coverage(profs); cov != 1.0 {
		t.Fatalf("Coverage = %v", cov)
	}
}

func TestAppPctSumsToPhaseShare(t *testing.T) {
	profs := twoPhaseWorkload()
	det, err := Detect(profs, Options{Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range det.Phases {
		for _, s := range p.Sites {
			total += s.AppPct
		}
	}
	// All 30 intervals are covered (each phase is pure), so App% sums
	// to ~100 across all phases.
	if total < 95 || total > 100.1 {
		t.Fatalf("sum of AppPct = %v, want ~100", total)
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect(nil, Options{}); err == nil {
		t.Fatal("accepted empty profiles")
	}
	empty := []interval.Profile{{Index: 0, Self: map[string]time.Duration{}}}
	if _, err := Detect(empty, Options{}); err == nil {
		t.Fatal("accepted all-idle profiles")
	}
}

func TestDetectDBSCAN(t *testing.T) {
	det, err := Detect(twoPhaseWorkload(), Options{Algorithm: DBSCANAlg})
	if err != nil {
		t.Fatal(err)
	}
	if det.K < 2 {
		t.Fatalf("DBSCAN K = %d, want >= 2 on clean two-phase data", det.K)
	}
	if len(det.WCSS) != 0 {
		t.Fatal("DBSCAN detection should not report a WCSS sweep")
	}
}

func TestDetectSilhouetteSelection(t *testing.T) {
	det, err := Detect(twoPhaseWorkload(), Options{Selection: Silhouette, Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if det.K != 2 {
		t.Fatalf("silhouette K = %d, want 2", det.K)
	}
}

func TestPhaseDuration(t *testing.T) {
	p := Phase{Intervals: []int{0, 1, 2}}
	if got := p.Duration(time.Second); got != 3*time.Second {
		t.Fatalf("Duration = %v", got)
	}
}

func TestStringers(t *testing.T) {
	if Body.String() != "body" || Loop.String() != "loop" {
		t.Fatal("InstType strings")
	}
	if Elbow.String() != "elbow" || Silhouette.String() != "silhouette" {
		t.Fatal("Selection strings")
	}
	if KMeansAlg.String() != "kmeans" || DBSCANAlg.String() != "dbscan" {
		t.Fatal("Algorithm strings")
	}
	if InstType(9).String() == "" || Selection(9).String() == "" || Algorithm(9).String() == "" {
		t.Fatal("unknown values must stringify")
	}
}

func TestCentroidDistanceOrdering(t *testing.T) {
	// The outlier interval within the phase must be processed last, so
	// the representative function gets selected first even though the
	// outlier's function would sort earlier alphabetically.
	var profs []interval.Profile
	for i := 0; i < 9; i++ {
		profs = append(profs, mkProfile(i, "zz_main", 1.0, 1))
	}
	// Outlier still in the same cluster (similar magnitude, different fn
	// forced into same cluster via KMax=1).
	profs = append(profs, mkProfile(9, "aa_rare", 1.0, 1))
	det, err := Detect(profs, Options{KMax: 1, CoverageThreshold: 1.0, Cluster: cluster.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sites := det.Phases[0].Sites
	if len(sites) != 2 || sites[0].Function != "zz_main" {
		t.Fatalf("sites = %+v, want zz_main selected first (centroid-nearest)", sites)
	}
}

func BenchmarkDetect60Intervals(b *testing.B) {
	profs := twoPhaseWorkload()
	for i := 0; i < 30; i++ {
		profs = append(profs, mkProfile(30+i, "post", 0.8, 2, "aux", 0.2, 9))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(profs, Options{Cluster: cluster.Options{Seed: uint64(i)}}); err != nil {
			b.Fatal(err)
		}
	}
}

package phase

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/incprof/incprof/internal/cluster"
	"github.com/incprof/incprof/internal/interval"
	"github.com/incprof/incprof/internal/xmath"
)

// randomWorkload builds a synthetic interval-profile sequence with a random
// number of phases, functions per phase, and per-interval noise —
// structured enough to be detectable, random enough to explore edge cases.
func randomWorkload(seed uint64) []interval.Profile {
	rng := xmath.NewRNG(seed)
	numPhases := 1 + rng.Intn(4)
	var profs []interval.Profile
	idx := 0
	for ph := 0; ph < numPhases; ph++ {
		span := 4 + rng.Intn(12)
		mainFn := string(rune('a'+ph)) + "_main"
		helperFn := string(rune('a'+ph)) + "_helper"
		for i := 0; i < span; i++ {
			p := interval.Profile{
				Index:     idx,
				Start:     time.Duration(idx) * time.Second,
				End:       time.Duration(idx+1) * time.Second,
				Self:      map[string]time.Duration{},
				ExactSelf: map[string]time.Duration{},
				Calls:     map[string]int64{},
			}
			mainShare := 0.6 + 0.3*rng.Float64()
			p.Self[mainFn] = time.Duration(mainShare * float64(time.Second))
			if rng.Float64() < 0.7 {
				p.Self[helperFn] = time.Duration((1 - mainShare) * float64(time.Second))
				p.Calls[helperFn] = int64(10 + rng.Intn(100))
			}
			if rng.Float64() < 0.5 {
				p.Calls[mainFn] = int64(1 + rng.Intn(3))
			}
			profs = append(profs, p)
			idx++
		}
	}
	return profs
}

// Property: every phase reaches the coverage threshold (or has exhausted
// its intervals trying), and per-site percentages are sane.
func TestPropertyCoverageInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		profs := randomWorkload(seed)
		det, err := Detect(profs, Options{Cluster: cluster.Options{Seed: seed}})
		if err != nil {
			return false
		}
		for _, p := range det.Phases {
			cov := p.Coverage(profs)
			// Algorithm 1 stops only at >= threshold or when every
			// interval has been processed. Every processed uncovered
			// interval with activity contributes a site, so coverage
			// below threshold is only possible if some intervals have
			// no active functions at all — not the case here.
			if cov < det.Options.CoverageThreshold-1e-9 {
				return false
			}
			var phaseSum float64
			for _, s := range p.Sites {
				if s.PhasePct < 0 || s.PhasePct > 100+1e-9 {
					return false
				}
				if s.AppPct < 0 || s.AppPct > 100+1e-9 {
					return false
				}
				phaseSum += s.PhasePct
			}
			if phaseSum > 100+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: phases partition the interval set — every interval belongs to
// exactly one phase (k-means path; DBSCAN may have noise).
func TestPropertyPhasesPartitionIntervals(t *testing.T) {
	f := func(seed uint64) bool {
		profs := randomWorkload(seed)
		det, err := Detect(profs, Options{Cluster: cluster.Options{Seed: seed}})
		if err != nil {
			return false
		}
		seen := make(map[int]int)
		for _, p := range det.Phases {
			for _, idx := range p.Intervals {
				seen[idx]++
			}
		}
		if len(seen) != len(profs) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: site dedup — no phase lists the same (function, type) twice,
// and site functions are active somewhere in their phase.
func TestPropertySiteSanity(t *testing.T) {
	f := func(seed uint64) bool {
		profs := randomWorkload(seed)
		det, err := Detect(profs, Options{Cluster: cluster.Options{Seed: seed}})
		if err != nil {
			return false
		}
		for _, p := range det.Phases {
			seen := make(map[siteKey]bool)
			for _, s := range p.Sites {
				k := siteKey{s.Function, s.Type}
				if seen[k] {
					return false
				}
				seen[k] = true
				active := false
				for _, idx := range p.Intervals {
					if profs[idx].Active(s.Function) {
						active = true
						break
					}
				}
				if !active {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging preserves the interval partition and never increases
// the phase count.
func TestPropertyMergePreservesPartition(t *testing.T) {
	f := func(seed uint64) bool {
		profs := randomWorkload(seed)
		det, err := Detect(profs, Options{Cluster: cluster.Options{Seed: seed}})
		if err != nil {
			return false
		}
		before := len(det.Phases)
		removed := det.MergeDuplicatePhases()
		if len(det.Phases) != before-removed {
			return false
		}
		seen := make(map[int]bool)
		for _, p := range det.Phases {
			for _, idx := range p.Intervals {
				if seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return len(seen) == len(profs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

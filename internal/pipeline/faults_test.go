package pipeline

import (
	"testing"

	"github.com/incprof/incprof/internal/faults"
	"github.com/incprof/incprof/internal/interval"
	"github.com/incprof/incprof/internal/phase"
)

func TestCollectWithFaultsDropsDumpsDeterministically(t *testing.T) {
	app := mustApp(t, "graph500", 0.2)
	plan := &faults.Plan{Seed: 17, Drop: 0.3}

	clean, err := Collect(app, CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Collect(mustApp(t, "graph500", 0.2), CollectOptions{Profile: true, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.DroppedDumps == 0 {
		t.Fatal("30% drop plan lost nothing")
	}
	if faulty.Dumps+faulty.DroppedDumps != clean.Dumps {
		t.Fatalf("kept %d + dropped %d != clean %d", faulty.Dumps, faulty.DroppedDumps, clean.Dumps)
	}

	// Same plan, same run: identical surviving stream.
	again, err := Collect(mustApp(t, "graph500", 0.2), CollectOptions{Profile: true, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if again.Dumps != faulty.Dumps || again.DroppedDumps != faulty.DroppedDumps {
		t.Fatalf("reruns diverge: %d/%d vs %d/%d dumps",
			again.Dumps, again.DroppedDumps, faulty.Dumps, faulty.DroppedDumps)
	}
	for rank := range faulty.Snapshots {
		a, b := faulty.Snapshots[rank], again.Snapshots[rank]
		if len(a) != len(b) {
			t.Fatalf("rank %d kept %d vs %d snapshots", rank, len(a), len(b))
		}
		for i := range a {
			if a[i].Seq != b[i].Seq {
				t.Fatalf("rank %d snapshot %d: seq %d vs %d", rank, i, a[i].Seq, b[i].Seq)
			}
		}
	}
}

func TestAnalyzeRobustAbsorbsFaultyCollection(t *testing.T) {
	app := mustApp(t, "graph500", 0.2)
	res, err := Collect(app, CollectOptions{Profile: true, Faults: &faults.Plan{Seed: 23, Drop: 0.25}})
	if err != nil {
		t.Fatal(err)
	}

	// The strict path refuses holes in the Seq stream only when a
	// regression appears; dropped dumps merely merge intervals there. The
	// robust path must surface them as gaps instead.
	an, err := Analyze(res, AnalyzeOptions{Robust: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Gaps) == 0 {
		t.Fatal("robust analysis reported no gaps for a 25% drop run")
	}
	for _, g := range an.Gaps {
		if g.Kind != interval.GapMissing {
			t.Fatalf("unexpected gap kind %v", g.Kind)
		}
	}
	if an.Detection == nil || an.Detection.K < 1 {
		t.Fatalf("degraded analysis did not complete: %+v", an.Detection)
	}
	repaired := 0
	for _, p := range an.Profiles {
		if p.Repaired {
			repaired++
		}
	}
	if repaired == 0 {
		t.Fatal("no repaired profiles flagged")
	}
}

func TestAnalyzeRobustMatchesStrictOnCleanRun(t *testing.T) {
	app := mustApp(t, "minife", 0.2)
	res, err := Collect(app, CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Analyze(res, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	robust, err := Analyze(res, AnalyzeOptions{Robust: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(robust.Gaps) != 0 {
		t.Fatalf("clean run produced gaps: %+v", robust.Gaps)
	}
	if strict.Detection.K != robust.Detection.K {
		t.Fatalf("k diverged on clean data: strict %d, robust %d",
			strict.Detection.K, robust.Detection.K)
	}
	if len(strict.Profiles) != len(robust.Profiles) {
		t.Fatalf("profile counts diverged: %d vs %d", len(strict.Profiles), len(robust.Profiles))
	}
	sl := labels(strict.Detection.Phases, len(strict.Profiles))
	rl := labels(robust.Detection.Phases, len(robust.Profiles))
	for i := range sl {
		if sl[i] != rl[i] {
			t.Fatalf("assignment %d diverged on clean data", i)
		}
	}
}

// labels flattens per-phase interval membership into per-interval labels.
func labels(phases []phase.Phase, n int) []int {
	out := make([]int, n)
	for _, p := range phases {
		for _, iv := range p.Intervals {
			out[iv] = p.ID
		}
	}
	return out
}

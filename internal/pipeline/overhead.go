package pipeline

import "time"

// OverheadModel prices the instrumentation events of a run so Table I's
// overhead columns can be computed deterministically inside the simulator.
//
// The paper measures wall-clock slowdown of real runs; in this reproduction
// the applications' compute is virtual, so a wall-clock ratio would compare
// instrumentation bookkeeping against nearly nothing. Instead each
// instrumentation event is charged a cost taken from what the corresponding
// real mechanism costs (see EXPERIMENTS.md for the calibration notes), and
// the overhead is the priced total relative to the uninstrumented virtual
// runtime. The real hot-path costs of this implementation are measured
// separately by the testing.B benchmarks.
type OverheadModel struct {
	// SampleInterrupt is the cost of one profiling-clock interrupt
	// (gprof's SIGPROF handler: PC capture + histogram bump).
	SampleInterrupt time.Duration
	// Mcount is the cost of one function-entry hook execution.
	Mcount time.Duration
	// DumpWrite is the cost of one IncProf snapshot dump: forcing the
	// gmon write-out plus renaming the file on a shared filesystem —
	// the dominant term at the paper's one-dump-per-second rate.
	DumpWrite time.Duration
	// BeatHotPath is the cost of one begin/end heartbeat pair.
	BeatHotPath time.Duration
	// FlushWrite is the cost of one heartbeat interval flush record.
	FlushWrite time.Duration
}

// DefaultOverheadModel holds the calibration used for the Table I
// reproduction.
var DefaultOverheadModel = OverheadModel{
	SampleInterrupt: 8 * time.Microsecond,
	Mcount:          120 * time.Nanosecond,
	DumpWrite:       40 * time.Millisecond,
	BeatHotPath:     350 * time.Nanosecond,
	FlushWrite:      1 * time.Millisecond,
}

// IncProfOverheadPct prices a profiled run against its uninstrumented
// virtual runtime.
func (m OverheadModel) IncProfOverheadPct(res *CollectionResult) float64 {
	if res.VirtualRuntime <= 0 {
		return 0
	}
	cost := time.Duration(res.RepSamples)*m.SampleInterrupt +
		time.Duration(res.RepCalls)*m.Mcount +
		time.Duration(res.RepDumps)*m.DumpWrite
	return 100 * float64(cost) / float64(res.VirtualRuntime)
}

// HeartbeatOverheadPct prices a heartbeat-instrumented run against its
// virtual runtime.
func (m OverheadModel) HeartbeatOverheadPct(res *HeartbeatResult) float64 {
	if res.VirtualRuntime <= 0 {
		return 0
	}
	beats := int64(0)
	if len(res.PerRankBeats) > 0 {
		beats = res.PerRankBeats[0]
	}
	flushes := int64(res.VirtualRuntime / time.Second)
	cost := time.Duration(beats)*m.BeatHotPath + time.Duration(flushes)*m.FlushWrite
	return 100 * float64(cost) / float64(res.VirtualRuntime)
}

// Package pipeline wires the whole IncProf workflow together, mirroring the
// paper's Figure 1 plus the AppEKG step:
//
//  1. Collect: run an application on the MPI substrate with the gprof-model
//     profiler attached and the IncProf collector dumping cumulative
//     snapshots once per interval on every rank.
//  2. Analyze: difference rank 0's snapshots into interval profiles, detect
//     phases (k-means + Elbow) and select instrumentation sites
//     (Algorithm 1).
//  3. Heartbeat: re-run the application with AppEKG instrumentation on the
//     selected (or manual) sites and gather the per-interval heartbeat
//     series that Figures 2-6 plot.
//
// Host wall-clock durations of the uninstrumented, profiled, and
// heartbeat-instrumented runs feed Table I's overhead columns.
package pipeline

import (
	"fmt"
	"time"

	"github.com/incprof/incprof/internal/apps"
	"github.com/incprof/incprof/internal/callgraph"
	"github.com/incprof/incprof/internal/faults"
	"github.com/incprof/incprof/internal/profile"
	"github.com/incprof/incprof/internal/heartbeat"
	"github.com/incprof/incprof/internal/incprof"
	"github.com/incprof/incprof/internal/interval"
	"github.com/incprof/incprof/internal/mpi"
	"github.com/incprof/incprof/internal/obs"
	"github.com/incprof/incprof/internal/phase"
	"github.com/incprof/incprof/internal/profiler"
	"github.com/incprof/incprof/internal/stream"
)

// CollectOptions configures a collection run.
type CollectOptions struct {
	// Interval is the IncProf dump interval (0 means 1s).
	Interval time.Duration
	// SamplePeriod is the profiling clock period (0 means 10ms).
	SamplePeriod time.Duration
	// Profile attaches the profiler and collector; when false the run is
	// the uninstrumented baseline.
	Profile bool
	// Cost is the MPI collective cost model.
	Cost mpi.CostModel
	// Faults, when non-nil, interposes the fault injector between every
	// rank's collector and its store, exercising the degraded data path.
	// Injection is deterministic per (Faults.Seed, rank, dump Seq).
	Faults *faults.Plan
	// Span, when non-nil, parents the tracing span Collect records.
	Span *obs.Span
}

// CollectionResult is the outcome of one application run under (or without)
// IncProf.
type CollectionResult struct {
	// Snapshots holds each rank's cumulative dumps; Snapshots[0] is the
	// representative rank the analysis uses.
	Snapshots [][]*profile.Sample
	// VirtualRuntime is the application's span in virtual time (max over
	// ranks).
	VirtualRuntime time.Duration
	// HostDuration is the real time the run took, the basis of overhead
	// measurements.
	HostDuration time.Duration
	// Dumps is the total number of snapshots across ranks.
	Dumps int
	// RepSamples, RepCalls, and RepDumps are the representative (rank 0)
	// instrumentation event counts a profiled run generated; the
	// OverheadModel prices them.
	RepSamples int64
	RepCalls   int64
	RepDumps   int64
	// DroppedDumps is the total number of dumps lost across ranks — to
	// store failures the collector's retry could not absorb, plus any the
	// fault injector discarded.
	DroppedDumps int
}

// Collect runs the application once.
func Collect(app apps.App, opts CollectOptions) (*CollectionResult, error) {
	ranks := app.Meta().Ranks
	sp := obs.Under(opts.Span, "pipeline.collect", 0)
	sp.SetStr("app", app.Meta().Name).SetInt("ranks", int64(ranks)).SetBool("profile", opts.Profile)
	defer sp.End()
	res := &CollectionResult{Snapshots: make([][]*profile.Sample, ranks)}
	stores := make([]incprof.Store, ranks)
	fstores := make([]*faults.Store, ranks)
	collDropped := make([]int, ranks)
	vtimes := make([]time.Duration, ranks)
	start := time.Now()
	var repSamples, repCalls, repDumps int64
	err := mpi.Run(mpi.Config{Size: ranks, Cost: opts.Cost}, nil, func(r *mpi.Rank) {
		rt := r.Runtime()
		if opts.Profile {
			p := profiler.New(rt, opts.SamplePeriod)
			var st incprof.Store = incprof.NewMemStore()
			if opts.Faults != nil {
				fs := faults.NewStore(st, *opts.Faults, r.ID())
				fstores[r.ID()] = fs
				st = fs
			}
			stores[r.ID()] = st
			c := incprof.New(rt, p, incprof.Options{Interval: opts.Interval, Store: st})
			defer func() {
				c.Close()
				collDropped[r.ID()] = c.Dropped()
				if r.ID() == 0 {
					repSamples = p.TotalSamples()
					repCalls = p.TotalCalls()
					repDumps = int64(c.Dumps())
				}
			}()
		}
		app.Run(r)
		vtimes[r.ID()] = rt.Now().Duration()
	})
	res.HostDuration = time.Since(start)
	if err != nil {
		return nil, err
	}
	res.RepSamples, res.RepCalls, res.RepDumps = repSamples, repCalls, repDumps
	for id, st := range stores {
		if st == nil {
			continue
		}
		snaps, err := st.Snapshots()
		if err != nil {
			return nil, err
		}
		res.Snapshots[id] = snaps
		res.Dumps += len(snaps)
		res.DroppedDumps += collDropped[id]
		if fstores[id] != nil {
			res.DroppedDumps += fstores[id].Dropped()
		}
	}
	for _, vt := range vtimes {
		if vt > res.VirtualRuntime {
			res.VirtualRuntime = vt
		}
	}
	sp.SetInt("dumps", int64(res.Dumps)).SetInt("dropped", int64(res.DroppedDumps))
	return res, nil
}

// AnalyzeOptions configures the phase analysis.
type AnalyzeOptions struct {
	// Phase configures detection; zero values take the paper defaults.
	Phase phase.Options
	// Parallelism bounds the worker pools the analysis hot path fans out
	// on: the k-means sweep and silhouette scoring. (Differencing is
	// incremental in the streaming engine and therefore serial.) 0 means
	// GOMAXPROCS, 1 forces the serial path. The result is identical for
	// every value given the same Phase.Cluster.Seed.
	Parallelism int
	// Rank selects the representative rank (default 0).
	Rank int
	// IncludeMPI keeps MPI pseudo-functions in the feature space. The
	// default (false) matches gprof's real behavior: MPI library time is
	// invisible to the histogram because the library is not compiled
	// with -pg.
	IncludeMPI bool
	// PromoteSites applies call-graph site promotion (the paper's §VI-B
	// improvement path): sites climb unique-caller chains to
	// higher-level source functions.
	PromoteSites bool
	// Promote tunes the promotion walk when PromoteSites is set.
	Promote callgraph.PromoteOptions
	// MergePhases combines phases with identical site sets after
	// detection (the paper's §VI-A/§VI-D postprocessing idea).
	MergePhases bool
	// Robust switches snapshot differencing to the gap-aware path
	// (interval.DifferenceRobust): missing, duplicate, late, and
	// regressed dumps degrade the analysis instead of failing it, and the
	// gaps encountered are reported on the Analysis.
	Robust bool
	// Gap selects the repair policy for missing dumps when Robust is set;
	// the zero value is GapSplit.
	Gap interval.GapPolicy
	// Span, when non-nil, parents the tracing span Analyze records.
	Span *obs.Span
}

// Analysis is the phase-analysis output plus the interval profiles it ran
// on.
type Analysis struct {
	Detection *phase.Detection
	Profiles  []interval.Profile
	// Gaps lists the collection faults robust differencing absorbed;
	// empty on the strict path and on clean streams.
	Gaps []interval.Gap
}

// Analyze differences the chosen rank's snapshots and runs phase detection.
func Analyze(res *CollectionResult, opts AnalyzeOptions) (*Analysis, error) {
	if opts.Rank < 0 || opts.Rank >= len(res.Snapshots) {
		return nil, fmt.Errorf("pipeline: rank %d out of range", opts.Rank)
	}
	snaps := res.Snapshots[opts.Rank]
	if len(snaps) == 0 {
		return nil, fmt.Errorf("pipeline: rank %d has no snapshots (was Profile set?)", opts.Rank)
	}
	sp := obs.Under(opts.Span, "pipeline.analyze", 0)
	sp.SetInt("rank", int64(opts.Rank)).SetInt("snapshots", int64(len(snaps))).SetBool("robust", opts.Robust)
	defer sp.End()
	popts := opts.Phase
	if popts.Cluster.Parallelism == 0 {
		popts.Cluster.Parallelism = opts.Parallelism
	}
	if !opts.IncludeMPI && popts.Features.Exclude == nil {
		popts.Features.Exclude = mpi.IsMPIFunc
	}
	// Analyze is the batch driver of the streaming engine: the snapshots
	// replay through the same differencer, feature builder, and terminal
	// detection a live feed uses, so batch and live analysis cannot diverge.
	eng := stream.New(stream.Options{
		Robust: opts.Robust,
		Gap:    opts.Gap,
		Phase:  popts,
		Span:   sp,
	})
	if err := (stream.SliceSource[*profile.Sample]{Items: snaps}).Run(eng); err != nil {
		return nil, err
	}
	r, err := eng.Finish()
	if err != nil {
		return nil, err
	}
	det, profs, gaps := r.Detection, r.Profiles, r.Gaps
	if opts.PromoteSites {
		// The final snapshot's arcs cover the whole run.
		g := callgraph.FromSnapshot(snaps[len(snaps)-1])
		popts := opts.Promote
		if popts.Exclude == nil {
			popts.Exclude = mpi.IsMPIFunc
		}
		callgraph.PromoteDetection(det, g, popts)
	}
	if opts.MergePhases {
		det.MergeDuplicatePhases()
	}
	return &Analysis{Detection: det, Profiles: profs, Gaps: gaps}, nil
}

// HeartbeatOptions configures an instrumented run.
type HeartbeatOptions struct {
	// Interval is the heartbeat collection interval (0 means 1s).
	Interval time.Duration
	// LoopBeatPeriod is the nominal loop-iteration beat duration
	// (0 means 100ms).
	LoopBeatPeriod time.Duration
	// Cost is the MPI collective cost model.
	Cost mpi.CostModel
}

// HeartbeatResult is the outcome of a heartbeat-instrumented run.
type HeartbeatResult struct {
	// Records holds rank 0's heartbeat records in interval order.
	Records []heartbeat.Record
	// PerRankBeats is the total completed beats per rank, an aggregate
	// symmetry check.
	PerRankBeats []int64
	// VirtualRuntime is the run's span in virtual time.
	VirtualRuntime time.Duration
	// HostDuration is the real time the run took.
	HostDuration time.Duration
	// Sites echoes the instrumented sites.
	Sites []heartbeat.SiteSpec
}

// RunWithHeartbeats re-runs the application with AppEKG auto-instrumentation
// on the given sites.
func RunWithHeartbeats(app apps.App, sites []heartbeat.SiteSpec, opts HeartbeatOptions) (*HeartbeatResult, error) {
	ranks := app.Meta().Ranks
	res := &HeartbeatResult{PerRankBeats: make([]int64, ranks), Sites: sites}
	sinks := make([]*heartbeat.MemSink, ranks)
	vtimes := make([]time.Duration, ranks)
	start := time.Now()
	err := mpi.Run(mpi.Config{Size: ranks, Cost: opts.Cost}, nil, func(r *mpi.Rank) {
		rt := r.Runtime()
		sink := heartbeat.NewMemSink()
		sinks[r.ID()] = sink
		ekg := heartbeat.New(heartbeat.Options{
			Interval: opts.Interval,
			Clock:    rt.Clock(),
			Sinks:    []heartbeat.Sink{sink},
		})
		heartbeat.Instrument(rt, ekg, sites, opts.LoopBeatPeriod)
		defer ekg.Close()
		app.Run(r)
		vtimes[r.ID()] = rt.Now().Duration()
	})
	res.HostDuration = time.Since(start)
	if err != nil {
		return nil, err
	}
	for id, sink := range sinks {
		recs := sink.Records()
		for _, rec := range recs {
			res.PerRankBeats[id] += rec.Count
		}
		if id == 0 {
			res.Records = recs
		}
	}
	for _, vt := range vtimes {
		if vt > res.VirtualRuntime {
			res.VirtualRuntime = vt
		}
	}
	return res, nil
}

// Experiment bundles the full workflow for one application.
type Experiment struct {
	App      apps.App
	Baseline *CollectionResult
	Profiled *CollectionResult
	Analysis *Analysis
	// Discovered is the heartbeat run on the discovered sites;
	// Manual the run on the paper's manual sites.
	Discovered *HeartbeatResult
	Manual     *HeartbeatResult
}

// ExperimentOptions configures RunExperiment.
type ExperimentOptions struct {
	Collect   CollectOptions
	Analyze   AnalyzeOptions
	Heartbeat HeartbeatOptions
	// SkipBaseline omits the uninstrumented run (overhead columns will
	// be zero).
	SkipBaseline bool
	// SkipManual omits the manual-site heartbeat run.
	SkipManual bool
}

// RunExperiment executes the full pipeline for one application: baseline,
// profiled collection, analysis, and heartbeat runs on discovered and manual
// sites.
func RunExperiment(app apps.App, opts ExperimentOptions) (*Experiment, error) {
	e := &Experiment{App: app}
	var err error
	if !opts.SkipBaseline {
		base := opts.Collect
		base.Profile = false
		if e.Baseline, err = Collect(app, base); err != nil {
			return nil, fmt.Errorf("baseline run: %w", err)
		}
	}
	prof := opts.Collect
	prof.Profile = true
	if e.Profiled, err = Collect(app, prof); err != nil {
		return nil, fmt.Errorf("profiled run: %w", err)
	}
	if e.Analysis, err = Analyze(e.Profiled, opts.Analyze); err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	discovered := heartbeat.SitesFromDetection(e.Analysis.Detection)
	if e.Discovered, err = RunWithHeartbeats(app, discovered, opts.Heartbeat); err != nil {
		return nil, fmt.Errorf("discovered-site heartbeat run: %w", err)
	}
	if !opts.SkipManual {
		if e.Manual, err = RunWithHeartbeats(app, app.ManualSites(), opts.Heartbeat); err != nil {
			return nil, fmt.Errorf("manual-site heartbeat run: %w", err)
		}
	}
	return e, nil
}

// OverheadPct returns the relative host-time overhead of run versus base in
// percent, the measure behind Table I's overhead columns.
func OverheadPct(base, run time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (float64(run) - float64(base)) / float64(base)
}

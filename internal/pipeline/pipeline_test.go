package pipeline

import (
	"testing"
	"time"

	"github.com/incprof/incprof/internal/apps"
	_ "github.com/incprof/incprof/internal/apps/graph500"
	_ "github.com/incprof/incprof/internal/apps/minife"
	"github.com/incprof/incprof/internal/heartbeat"
	"github.com/incprof/incprof/internal/phase"
)

func mustApp(t *testing.T, name string, scale float64) apps.App {
	t.Helper()
	app, err := apps.New(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestCollectBaselineHasNoSnapshots(t *testing.T) {
	app := mustApp(t, "graph500", 0.05)
	res, err := Collect(app, CollectOptions{Profile: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dumps != 0 {
		t.Fatalf("baseline produced %d dumps", res.Dumps)
	}
	if res.VirtualRuntime <= 0 || res.HostDuration <= 0 {
		t.Fatalf("durations not recorded: %+v", res)
	}
	if _, err := Analyze(res, AnalyzeOptions{}); err == nil {
		t.Fatal("Analyze accepted a baseline run with no snapshots")
	}
}

func TestCollectProfiledProducesIntervalDumps(t *testing.T) {
	app := mustApp(t, "graph500", 0.05)
	res, err := Collect(app, CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	wantDumps := int(res.VirtualRuntime / time.Second)
	if len(res.Snapshots[0]) < wantDumps {
		t.Fatalf("rank 0 has %d dumps for a %v run", len(res.Snapshots[0]), res.VirtualRuntime)
	}
}

func TestAnalyzeFindsPhases(t *testing.T) {
	app := mustApp(t, "graph500", 0.1)
	res, err := Collect(app, CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(res, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if an.Detection.K < 2 {
		t.Fatalf("K = %d, want >= 2 (generation vs search/validate)", an.Detection.K)
	}
	// The dominant paper sites must be discovered even at small scale.
	found := map[string]bool{}
	for _, p := range an.Detection.Phases {
		for _, s := range p.Sites {
			found[s.Function] = true
		}
	}
	for _, fn := range []string{"validate_bfs_result", "make_one_edge"} {
		if !found[fn] {
			t.Fatalf("site %s not discovered; found %v", fn, found)
		}
	}
}

func TestAnalyzeExcludesMPIByDefault(t *testing.T) {
	app := mustApp(t, "minife", 0.03)
	res, err := Collect(app, CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(res, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range an.Detection.Matrix.FuncNames {
		if fn == "MPI_Allreduce" || fn == "MPI_Barrier" {
			t.Fatalf("MPI pseudo-function %s in feature space", fn)
		}
	}
	// IncludeMPI may or may not widen the space (symmetric ranks often
	// wait less than one sample period), but it must never narrow it.
	an2, err := Analyze(res, AnalyzeOptions{IncludeMPI: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(an2.Detection.Matrix.FuncNames) < len(an.Detection.Matrix.FuncNames) {
		t.Fatal("IncludeMPI narrowed the feature space")
	}
}

func TestAnalyzeRankOutOfRange(t *testing.T) {
	app := mustApp(t, "graph500", 0.05)
	res, err := Collect(app, CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(res, AnalyzeOptions{Rank: 99}); err == nil {
		t.Fatal("accepted out-of-range rank")
	}
}

func TestRunWithHeartbeatsDiscoveredSites(t *testing.T) {
	app := mustApp(t, "graph500", 0.05)
	res, err := Collect(app, CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(res, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sites := heartbeat.SitesFromDetection(an.Detection)
	hb, err := RunWithHeartbeats(app, sites, HeartbeatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Records) == 0 {
		t.Fatal("no heartbeat records")
	}
	var total int64
	for _, rec := range hb.Records {
		total += rec.Count
	}
	if total == 0 {
		t.Fatal("no beats recorded")
	}
}

func TestRunWithHeartbeatsManualSitesSymmetric(t *testing.T) {
	app := mustApp(t, "minife", 0.03)
	hb, err := RunWithHeartbeats(app, app.ManualSites(), HeartbeatOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.PerRankBeats) != app.Meta().Ranks {
		t.Fatalf("per-rank beats = %v", hb.PerRankBeats)
	}
	// Symmetric application: all ranks beat a similar amount.
	first := hb.PerRankBeats[0]
	if first == 0 {
		t.Fatal("rank 0 recorded no beats")
	}
	for id, n := range hb.PerRankBeats {
		if n < first/2 || n > first*2 {
			t.Fatalf("rank %d beats %d wildly different from rank 0's %d", id, n, first)
		}
	}
}

func TestRunExperimentFull(t *testing.T) {
	app := mustApp(t, "graph500", 0.05)
	e, err := RunExperiment(app, ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Baseline == nil || e.Profiled == nil || e.Analysis == nil || e.Discovered == nil || e.Manual == nil {
		t.Fatalf("experiment incomplete: %+v", e)
	}
	if e.Analysis.Detection.K < 1 {
		t.Fatal("no phases")
	}
	// Virtual runtimes of baseline and profiled runs agree (profiling
	// does not perturb virtual time).
	if e.Baseline.VirtualRuntime != e.Profiled.VirtualRuntime {
		t.Fatalf("virtual runtime changed under profiling: %v vs %v",
			e.Baseline.VirtualRuntime, e.Profiled.VirtualRuntime)
	}
}

func TestRunExperimentSkips(t *testing.T) {
	app := mustApp(t, "graph500", 0.05)
	e, err := RunExperiment(app, ExperimentOptions{SkipBaseline: true, SkipManual: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.Baseline != nil || e.Manual != nil {
		t.Fatal("skips ignored")
	}
}

func TestOverheadPct(t *testing.T) {
	if got := OverheadPct(100, 110); got != 10 {
		t.Fatalf("OverheadPct = %v", got)
	}
	if got := OverheadPct(0, 110); got != 0 {
		t.Fatalf("OverheadPct with zero base = %v", got)
	}
	if got := OverheadPct(100, 90); got != -10 {
		t.Fatalf("negative overhead = %v", got)
	}
}

func TestDetectionBodyLoopAgainstCallData(t *testing.T) {
	// Cross-module invariant: a site tagged Body must have calls in at
	// least one interval of its phase; a Loop site must be active
	// without calls in at least one interval of its phase.
	app := mustApp(t, "graph500", 0.1)
	res, err := Collect(app, CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(res, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range an.Detection.Phases {
		for _, s := range p.Sites {
			sawBodyEvidence, sawLoopEvidence := false, false
			for _, idx := range p.Intervals {
				prof := an.Profiles[idx]
				if !prof.Active(s.Function) {
					continue
				}
				if prof.Calls[s.Function] > 0 {
					sawBodyEvidence = true
				} else {
					sawLoopEvidence = true
				}
			}
			switch s.Type {
			case phase.Body:
				if !sawBodyEvidence {
					t.Fatalf("body site %s never called in its phase", s.Function)
				}
			case phase.Loop:
				if !sawLoopEvidence {
					t.Fatalf("loop site %s always called in its phase", s.Function)
				}
			}
		}
	}
}

func TestCrossRankStatsSymmetric(t *testing.T) {
	app := mustApp(t, "minife", 0.03)
	res, err := Collect(app, CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := CrossRankStats(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no aggregated functions")
	}
	// Functions ordered by descending mean self time; cg_solve leads.
	if stats[0].Function != "cg_solve" {
		t.Fatalf("top function = %s", stats[0].Function)
	}
	if int(stats[0].Self.N()) != app.Meta().Ranks {
		t.Fatalf("ranks aggregated = %d", stats[0].Self.N())
	}
	// The paper's symmetric-parallel assumption: per-rank behavior
	// agrees closely.
	if score := SymmetryScore(stats); score > 0.05 {
		t.Fatalf("symmetry score = %v, want ~0 for a symmetric app", score)
	}
	for _, st := range stats[:3] {
		if st.CoV() > 0.1 {
			t.Fatalf("%s CoV = %v across ranks", st.Function, st.CoV())
		}
	}
}

func TestCrossRankStatsNoProfiledRanks(t *testing.T) {
	app := mustApp(t, "graph500", 0.05)
	res, err := Collect(app, CollectOptions{Profile: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CrossRankStats(res); err == nil {
		t.Fatal("aggregated an unprofiled run")
	}
}

func TestAnalyzePromoteAndMerge(t *testing.T) {
	app := mustApp(t, "minife", 0.05)
	res, err := Collect(app, CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(res, AnalyzeOptions{PromoteSites: true, MergePhases: true})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §VI-B wish: the assembly phase site is
	// perform_elem_loop after promotion.
	foundPromoted := false
	for _, p := range an.Detection.Phases {
		for _, s := range p.Sites {
			if s.Function == "perform_elem_loop" && s.PromotedFrom == "sum_in_symm_elem_matrix" {
				foundPromoted = true
				if s.PhasePct == 0 {
					t.Fatal("promoted site lost its coverage accounting")
				}
			}
		}
	}
	if !foundPromoted {
		t.Fatalf("promotion did not lift the assembly site; phases: %+v", an.Detection.Phases)
	}
}

func TestRankAgreementSymmetricApp(t *testing.T) {
	app := mustApp(t, "minife", 0.03)
	res, err := Collect(app, CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	agreement, err := RankAgreement(res, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if agreement < 0.9 {
		t.Fatalf("cross-rank phase agreement = %v, want ~1 for a symmetric app", agreement)
	}
}

func TestRankAgreementNoRanks(t *testing.T) {
	app := mustApp(t, "graph500", 0.05)
	res, err := Collect(app, CollectOptions{Profile: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RankAgreement(res, AnalyzeOptions{}); err == nil {
		t.Fatal("agreement computed with no profiled ranks")
	}
}

func TestInstrumentationDoesNotPerturbVirtualTime(t *testing.T) {
	// The observation machinery must be invisible to the application:
	// baseline, profiled, and heartbeat-instrumented runs of the same
	// deterministic app span identical virtual time.
	app := mustApp(t, "graph500", 0.05)
	e, err := RunExperiment(app, ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Baseline.VirtualRuntime != e.Profiled.VirtualRuntime {
		t.Fatalf("profiling changed virtual time: %v vs %v",
			e.Baseline.VirtualRuntime, e.Profiled.VirtualRuntime)
	}
	if e.Baseline.VirtualRuntime != e.Discovered.VirtualRuntime {
		t.Fatalf("heartbeats changed virtual time: %v vs %v",
			e.Baseline.VirtualRuntime, e.Discovered.VirtualRuntime)
	}
	if e.Baseline.VirtualRuntime != e.Manual.VirtualRuntime {
		t.Fatalf("manual heartbeats changed virtual time: %v vs %v",
			e.Baseline.VirtualRuntime, e.Manual.VirtualRuntime)
	}
}

package pipeline

import (
	"fmt"
	"math"
	"sort"

	"github.com/incprof/incprof/internal/cluster"

	"github.com/incprof/incprof/internal/xmath"
)

// RankStat aggregates one function's total self time across all ranks —
// the "aggregate descriptive statistics" use the paper makes of the
// non-representative ranks' profiles (§VI).
type RankStat struct {
	// Function is the function name.
	Function string
	// Self summarizes per-rank total sampled self seconds.
	Self xmath.Welford
}

// CoV returns the coefficient of variation (stddev/mean) of the function's
// per-rank self time; near-zero confirms the symmetric behavior the paper
// assumes when analyzing one representative rank.
func (s *RankStat) CoV() float64 {
	if s.Self.Mean() == 0 {
		return 0
	}
	return s.Self.Stddev() / s.Self.Mean()
}

// CrossRankStats aggregates the final snapshot of every profiled rank.
// Functions are ordered by descending mean self time. It errors when no
// rank has snapshots.
func CrossRankStats(res *CollectionResult) ([]RankStat, error) {
	byFunc := make(map[string]*RankStat)
	ranksSeen := 0
	for _, snaps := range res.Snapshots {
		if len(snaps) == 0 {
			continue
		}
		ranksSeen++
		final := snaps[len(snaps)-1]
		for _, rec := range final.Funcs {
			if rec.Samples == 0 {
				continue
			}
			st, ok := byFunc[rec.Name]
			if !ok {
				st = &RankStat{Function: rec.Name}
				byFunc[rec.Name] = st
			}
			st.Self.Add(final.SampledSelf(rec).Seconds())
		}
	}
	if ranksSeen == 0 {
		return nil, fmt.Errorf("pipeline: no profiled ranks to aggregate")
	}
	out := make([]RankStat, 0, len(byFunc))
	for _, st := range byFunc {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		mi, mj := out[i].Self.Mean(), out[j].Self.Mean()
		if mi != mj {
			return mi > mj
		}
		return out[i].Function < out[j].Function
	})
	return out, nil
}

// SymmetryScore condenses cross-rank agreement to one number: the
// self-time-weighted mean CoV over all functions (0 = perfectly
// symmetric). NaN-free by construction.
func SymmetryScore(stats []RankStat) float64 {
	var num, den float64
	for i := range stats {
		w := stats[i].Self.Mean()
		cov := stats[i].CoV()
		if math.IsNaN(cov) || math.IsInf(cov, 0) {
			continue
		}
		num += w * cov
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// RankAgreement runs phase detection independently on every profiled rank
// and returns the mean pairwise adjusted Rand index of their per-interval
// phase labelings — 1.0 when every rank tells the same phase story, the
// quantitative form of the paper's "all processes behave similarly" (§VI).
func RankAgreement(res *CollectionResult, opts AnalyzeOptions) (float64, error) {
	var labelings [][]int
	for rank := range res.Snapshots {
		if len(res.Snapshots[rank]) == 0 {
			continue
		}
		o := opts
		o.Rank = rank
		an, err := Analyze(res, o)
		if err != nil {
			return 0, fmt.Errorf("pipeline: rank %d analysis: %w", rank, err)
		}
		labels := make([]int, len(an.Profiles))
		for _, p := range an.Detection.Phases {
			for _, idx := range p.Intervals {
				labels[idx] = p.ID
			}
		}
		labelings = append(labelings, labels)
	}
	if len(labelings) == 0 {
		return 0, fmt.Errorf("pipeline: no profiled ranks to compare")
	}
	if len(labelings) == 1 {
		return 1, nil
	}
	var sum float64
	var pairs int
	for i := 0; i < len(labelings); i++ {
		for j := i + 1; j < len(labelings); j++ {
			a, b := labelings[i], labelings[j]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			sum += cluster.AdjustedRandIndex(a[:n], b[:n])
			pairs++
		}
	}
	return sum / float64(pairs), nil
}

package pprof

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"github.com/incprof/incprof/internal/profile"
)

// FuzzDecode hardens the protobuf decoder against corrupted, truncated, and
// adversarial input: it must error or succeed, never panic, over-allocate,
// or return a sample with negative counters.
func FuzzDecode(f *testing.F) {
	s := sample()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())                      // valid gzip-compressed profile
	f.Add(buf.Bytes()[:len(buf.Bytes())/2]) // torn mid-stream
	gzRaw := rawProto(f, buf.Bytes())
	f.Add(gzRaw)                // valid raw proto
	f.Add(gzRaw[:len(gzRaw)-1]) // truncated raw proto
	f.Add([]byte{0x1f, 0x8b})   // bare gzip magic
	f.Add([]byte("not a profile"))
	// Duplicate seq comments: last one wins, must not confuse the decoder.
	dup := sample()
	dup.Seq = 7
	var dupBuf bytes.Buffer
	if err := Encode(&dupBuf, dup); err != nil {
		f.Fatal(err)
	}
	f.Add(dupBuf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("nil sample with nil error")
		}
		for _, rec := range s.Funcs {
			if rec.Samples < 0 || rec.Calls < 0 || rec.SelfTime < 0 {
				t.Fatalf("negative counters survived decode: %+v", rec)
			}
			if rec.Name == "" {
				t.Fatal("unnamed function survived decode")
			}
		}
		if s.Seq < 0 && s.Seq != profile.SeqUnassigned {
			t.Fatalf("invalid seq %d", s.Seq)
		}
		_ = s.TotalSampledSelf()
	})
}

// rawProto decompresses an encoded profile for raw-proto seeds.
func rawProto(f *testing.F, data []byte) []byte {
	f.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		f.Fatal(err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

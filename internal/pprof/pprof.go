// Package pprof is the Go pprof frontend: it decodes gzip-compressed
// profile.proto payloads — the format `go tool pprof`, net/http/pprof, and
// runtime/pprof produce — into the format-neutral profile.Sample the
// analysis core consumes, and encodes Samples back for fixtures and the
// cross-format gates.
//
// The ingestion contract mirrors gmon.out: each dump is CUMULATIVE since
// program start (a CPU profile whose collection started at run begin,
// snapshotted once per interval), and the differencer turns consecutive
// dumps into per-interval profiles by subtraction. Self time is attributed
// to the leaf frame of each stack, exactly as pprof's own "flat" view does,
// so a multi-stack profile folds to per-function totals.
//
// Column mapping: the sample_type table is scanned by name — "samples"
// (unit "count") feeds FuncRecord.Samples, "cpu" (unit "nanoseconds") feeds
// SelfTime, and an optional third "calls" column (an IncProf extension the
// encoder writes) feeds Calls. Real two-column Go CPU profiles therefore
// ingest with Calls left zero — the honest degradation for a format that
// does not count invocations. Call-graph arcs are likewise not represented:
// stack edges weight sample counts, not invocation counts, and fabricating
// arc counts from them would corrupt the call-graph reports.
//
// The sequence number travels in the profile's comment table ("seq=N");
// profiles without it (any real pprof capture) decode to Seq =
// profile.SeqUnassigned and the directory readers number them from the
// pprof.out.N file name.
package pprof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/incprof/incprof/internal/profile"
)

// Profile message field numbers (profile.proto).
const (
	fSampleType = 1
	fSample     = 2
	fLocation   = 4
	fFunction   = 5
	fStringTab  = 6
	fTimeNanos  = 9
	fDurNanos   = 10
	fPeriodType = 11
	fPeriod     = 12
	fComment    = 13
)

// ValueType fields.
const (
	vtType = 1
	vtUnit = 2
)

// Sample fields.
const (
	sLocationID = 1
	sValue      = 2
)

// Location fields.
const (
	locID   = 1
	locLine = 4
)

// Line fields.
const lineFunctionID = 1

// Function fields.
const (
	fnID   = 1
	fnName = 2
)

// DefaultSamplePeriod is assumed when a profile carries no period: the Go
// runtime's 100 Hz CPU profiling default.
const DefaultSamplePeriod = 10 * time.Millisecond

// gzipMagic is the two-byte gzip stream header every `go tool pprof` output
// starts with.
var gzipMagic = []byte{0x1f, 0x8b}

func init() {
	profile.Register(&profile.Format{
		Name:       "pprof",
		FilePrefix: "pprof.out.",
		Detect:     func(data []byte) bool { return bytes.HasPrefix(data, gzipMagic) },
		Decode:     Decode,
		Encode:     Encode,
	})
}

type valueType struct{ typ, unit uint64 }

type rawSample struct {
	locs   []uint64
	values []int64
}

// Decode reads one pprof profile (gzip-compressed or raw proto) into a
// cumulative Sample.
func Decode(r io.Reader) (*profile.Sample, error) {
	data, err := io.ReadAll(io.LimitReader(r, 1<<28))
	if err != nil {
		return nil, fmt.Errorf("pprof: reading payload: %w", err)
	}
	if bytes.HasPrefix(data, gzipMagic) {
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pprof: opening gzip stream: %w", err)
		}
		data, err = io.ReadAll(io.LimitReader(gz, 1<<28))
		if cerr := gz.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("pprof: decompressing: %w", err)
		}
	}

	var (
		strtab      []string
		sampleTypes []valueType
		samples     []rawSample
		locFunc     = map[uint64]uint64{} // location id -> leaf function id
		funcName    = map[uint64]uint64{} // function id -> name index
		timeNanos   int64
		period      int64
		periodType  valueType
		comments    []uint64
	)

	r0 := &wireReader{data: data}
	for !r0.done() {
		num, wt, err := r0.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case fStringTab:
			if wt != wtLen {
				return nil, fmt.Errorf("pprof: string_table with wire type %d", wt)
			}
			b, err := r0.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(b))
		case fSampleType, fPeriodType:
			b, err := r0.bytes()
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(b)
			if err != nil {
				return nil, err
			}
			if num == fSampleType {
				sampleTypes = append(sampleTypes, vt)
			} else {
				periodType = vt
			}
		case fSample:
			b, err := r0.bytes()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(b)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case fLocation:
			b, err := r0.bytes()
			if err != nil {
				return nil, err
			}
			id, fn, err := parseLocation(b)
			if err != nil {
				return nil, err
			}
			locFunc[id] = fn
		case fFunction:
			b, err := r0.bytes()
			if err != nil {
				return nil, err
			}
			id, name, err := parseFunction(b)
			if err != nil {
				return nil, err
			}
			funcName[id] = name
		case fTimeNanos:
			v, err := r0.varint()
			if err != nil {
				return nil, err
			}
			timeNanos = int64(v)
		case fPeriod:
			v, err := r0.varint()
			if err != nil {
				return nil, err
			}
			period = int64(v)
		case fComment:
			if comments, err = r0.uints(wt, comments); err != nil {
				return nil, err
			}
		default:
			if err := r0.skip(wt); err != nil {
				return nil, err
			}
		}
	}

	str := func(idx uint64) (string, error) {
		if idx >= uint64(len(strtab)) {
			return "", fmt.Errorf("pprof: string index %d out of table (len %d)", idx, len(strtab))
		}
		return strtab[idx], nil
	}

	// Resolve the value columns by sample_type name.
	colSamples, colCPU, colCalls := -1, -1, -1
	for i, vt := range sampleTypes {
		name, err := str(vt.typ)
		if err != nil {
			return nil, err
		}
		switch name {
		case "samples":
			colSamples = i
		case "cpu":
			colCPU = i
		case "calls":
			colCalls = i
		}
	}
	if colSamples < 0 && colCPU < 0 && len(samples) > 0 {
		return nil, fmt.Errorf("pprof: no samples/count or cpu/nanoseconds sample type (have %d types)", len(sampleTypes))
	}

	out := &profile.Sample{Seq: profile.SeqUnassigned}
	if timeNanos < 0 {
		return nil, fmt.Errorf("pprof: negative time_nanos %d", timeNanos)
	}
	out.Timestamp = time.Duration(timeNanos)
	switch {
	case period > 0:
		unit := ""
		if periodType != (valueType{}) {
			if unit, err = str(periodType.unit); err != nil {
				return nil, err
			}
		}
		switch unit {
		case "", "nanoseconds":
			out.SamplePeriod = time.Duration(period)
		case "microseconds":
			out.SamplePeriod = time.Duration(period) * time.Microsecond
		case "milliseconds":
			out.SamplePeriod = time.Duration(period) * time.Millisecond
		case "seconds":
			out.SamplePeriod = time.Duration(period) * time.Second
		default:
			return nil, fmt.Errorf("pprof: unsupported period unit %q", unit)
		}
	case period < 0:
		return nil, fmt.Errorf("pprof: negative period %d", period)
	default:
		out.SamplePeriod = DefaultSamplePeriod
	}

	// Fold stacks to leaf functions, pprof's flat view.
	type acc struct{ samples, cpu, calls int64 }
	byName := map[string]*acc{}
	for _, s := range samples {
		if len(s.locs) == 0 {
			continue
		}
		fnID, ok := locFunc[s.locs[0]]
		if !ok {
			return nil, fmt.Errorf("pprof: sample references unknown location %d", s.locs[0])
		}
		nameIdx, ok := funcName[fnID]
		if !ok {
			return nil, fmt.Errorf("pprof: location %d references unknown function %d", s.locs[0], fnID)
		}
		name, err := str(nameIdx)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, fmt.Errorf("pprof: function %d has an empty name", fnID)
		}
		a := byName[name]
		if a == nil {
			a = &acc{}
			byName[name] = a
		}
		take := func(col int) (int64, error) {
			if col < 0 || col >= len(s.values) {
				return 0, nil
			}
			if s.values[col] < 0 {
				return 0, fmt.Errorf("pprof: negative sample value %d for %q", s.values[col], name)
			}
			return s.values[col], nil
		}
		var v int64
		if v, err = take(colSamples); err != nil {
			return nil, err
		}
		a.samples += v
		if v, err = take(colCPU); err != nil {
			return nil, err
		}
		a.cpu += v
		if v, err = take(colCalls); err != nil {
			return nil, err
		}
		a.calls += v
	}
	for name, a := range byName {
		if colSamples < 0 && a.cpu > 0 && out.SamplePeriod > 0 {
			// Profiles lacking a samples/count column carry only cpu time;
			// recover the histogram count from the period. Never applied
			// when a samples column exists — a zero there means zero.
			a.samples = (a.cpu + int64(out.SamplePeriod)/2) / int64(out.SamplePeriod)
		}
		if a.samples == 0 && a.cpu == 0 && a.calls == 0 {
			continue
		}
		out.Funcs = append(out.Funcs, profile.FuncRecord{
			Name:     name,
			Samples:  a.samples,
			SelfTime: time.Duration(a.cpu),
			Calls:    a.calls,
		})
	}

	// The sequence number, if the producer recorded one, rides the comment
	// table as "seq=N".
	for _, idx := range comments {
		c, err := str(idx)
		if err != nil {
			return nil, err
		}
		if v, ok := strings.CutPrefix(c, "seq="); ok {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("pprof: bad seq comment %q", c)
			}
			out.Seq = n
		}
	}

	out.Normalize()
	return out, nil
}

func parseValueType(b []byte) (valueType, error) {
	var vt valueType
	r := &wireReader{data: b}
	for !r.done() {
		num, wt, err := r.tag()
		if err != nil {
			return vt, err
		}
		switch num {
		case vtType:
			if vt.typ, err = r.varint(); err != nil {
				return vt, err
			}
		case vtUnit:
			if vt.unit, err = r.varint(); err != nil {
				return vt, err
			}
		default:
			if err := r.skip(wt); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(b []byte) (rawSample, error) {
	var s rawSample
	r := &wireReader{data: b}
	var vals []uint64
	for !r.done() {
		num, wt, err := r.tag()
		if err != nil {
			return s, err
		}
		switch num {
		case sLocationID:
			if s.locs, err = r.uints(wt, s.locs); err != nil {
				return s, err
			}
		case sValue:
			if vals, err = r.uints(wt, vals[:0]); err != nil {
				return s, err
			}
			for _, v := range vals {
				s.values = append(s.values, int64(v))
			}
		default:
			if err := r.skip(wt); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLocation(b []byte) (id, fn uint64, err error) {
	r := &wireReader{data: b}
	for !r.done() {
		num, wt, err := r.tag()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case locID:
			if id, err = r.varint(); err != nil {
				return 0, 0, err
			}
		case locLine:
			lb, err := r.bytes()
			if err != nil {
				return 0, 0, err
			}
			// The first Line of a location is the leaf (innermost) frame.
			if fn == 0 {
				lr := &wireReader{data: lb}
				for !lr.done() {
					lnum, lwt, err := lr.tag()
					if err != nil {
						return 0, 0, err
					}
					if lnum == lineFunctionID {
						if fn, err = lr.varint(); err != nil {
							return 0, 0, err
						}
					} else if err := lr.skip(lwt); err != nil {
						return 0, 0, err
					}
				}
			}
		default:
			if err := r.skip(wt); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, fn, nil
}

func parseFunction(b []byte) (id, name uint64, err error) {
	r := &wireReader{data: b}
	for !r.done() {
		num, wt, err := r.tag()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case fnID:
			if id, err = r.varint(); err != nil {
				return 0, 0, err
			}
		case fnName:
			if name, err = r.varint(); err != nil {
				return 0, 0, err
			}
		default:
			if err := r.skip(wt); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, name, nil
}

// Encode writes the sample as a gzip-compressed pprof profile with the
// three-column sample_type table [samples/count, cpu/nanoseconds,
// calls/count], one single-frame stack per function, the period as
// cpu/nanoseconds, the timestamp as time_nanos, and the sequence number as
// a "seq=N" comment. Call-graph arcs are not representable and are dropped
// — decoding the result yields the sample minus its arcs. Output is
// deterministic for a normalized sample.
func Encode(w io.Writer, s *profile.Sample) error {
	// String table: "" first as the spec requires, then fixed labels, then
	// function names in their (sorted) record order.
	strtab := []string{"", "samples", "count", "cpu", "nanoseconds", "calls"}
	idx := map[string]uint64{}
	for i, str := range strtab {
		idx[str] = uint64(i)
	}
	intern := func(str string) uint64 {
		if i, ok := idx[str]; ok {
			return i
		}
		idx[str] = uint64(len(strtab))
		strtab = append(strtab, str)
		return idx[str]
	}
	funcs := append([]profile.FuncRecord(nil), s.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Name < funcs[j].Name })

	var top wireWriter
	vt := func(typ, unit string) []byte {
		var w wireWriter
		w.varintField(vtType, intern(typ))
		w.varintField(vtUnit, intern(unit))
		return w.buf
	}
	top.bytesField(fSampleType, vt("samples", "count"))
	top.bytesField(fSampleType, vt("cpu", "nanoseconds"))
	top.bytesField(fSampleType, vt("calls", "count"))

	for i, f := range funcs {
		id := uint64(i + 1)
		var sm wireWriter
		sm.packedField(sLocationID, []uint64{id})
		sm.packedField(sValue, []uint64{uint64(f.Samples), uint64(f.SelfTime), uint64(f.Calls)})
		top.bytesField(fSample, sm.buf)
	}
	for i, f := range funcs {
		id := uint64(i + 1)
		var line wireWriter
		line.varintField(lineFunctionID, id)
		var loc wireWriter
		loc.varintField(locID, id)
		loc.bytesField(locLine, line.buf)
		top.bytesField(fLocation, loc.buf)
		var fn wireWriter
		fn.varintField(fnID, id)
		fn.varintField(fnName, intern(f.Name))
		top.bytesField(fFunction, fn.buf)
	}
	seqIdx := uint64(0)
	if s.Seq != profile.SeqUnassigned {
		seqIdx = intern("seq=" + strconv.Itoa(s.Seq))
	}
	for _, str := range strtab {
		top.bytesField(fStringTab, []byte(str))
	}
	top.varintField(fTimeNanos, uint64(s.Timestamp))
	top.bytesField(fPeriodType, vtStatic("cpu", "nanoseconds", idx))
	top.varintField(fPeriod, uint64(s.SamplePeriod))
	if seqIdx != 0 {
		top.packedField(fComment, []uint64{seqIdx})
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(top.buf); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}

// vtStatic builds a ValueType from already-interned strings (the encode
// path writes the string table before the trailer fields, so late interning
// would corrupt it).
func vtStatic(typ, unit string, idx map[string]uint64) []byte {
	var w wireWriter
	w.varintField(vtType, idx[typ])
	w.varintField(vtUnit, idx[unit])
	return w.buf
}

package pprof

import (
	"bytes"
	"compress/gzip"
	"reflect"
	"testing"
	"time"

	"github.com/incprof/incprof/internal/profile"
)

func sample() *profile.Sample {
	s := &profile.Sample{
		Seq:          3,
		Timestamp:    4 * time.Second,
		SamplePeriod: 10 * time.Millisecond,
		Funcs: []profile.FuncRecord{
			{Name: "run_bfs", Samples: 120, SelfTime: 1205 * time.Millisecond, Calls: 7},
			{Name: "make_one_edge", Samples: 30, SelfTime: 301 * time.Millisecond, Calls: 90000},
			{Name: "validate_bfs_result", Samples: 250, SelfTime: 2498 * time.Millisecond, Calls: 2},
		},
	}
	s.Normalize()
	return s
}

func TestFormatRegistration(t *testing.T) {
	f, ok := profile.Lookup("pprof")
	if !ok {
		t.Fatal("pprof format not registered")
	}
	if f.FilePrefix != "pprof.out." {
		t.Fatalf("prefix = %q", f.FilePrefix)
	}
	if !f.Detect(gzipMagic) {
		t.Fatal("Detect rejects a gzip header")
	}
	if f.Detect([]byte(profile.Magic)) {
		t.Fatal("Detect accepts the canonical IGMN magic")
	}
}

// Round trip: arcs aside, a normalized sample survives Encode -> Decode
// exactly, including the IncProf calls column and the seq comment.
func TestRoundTrip(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), gzipMagic) {
		t.Fatalf("encoded profile is not gzip-compressed: % x", buf.Bytes()[:4])
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	s := sample()
	var a, b bytes.Buffer
	if err := Encode(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestDecodeRawProto(t *testing.T) {
	// The decoder must accept an uncompressed proto payload too (pprof
	// tooling does).
	s := sample()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(gz); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("raw-proto decode differs from gzip decode")
	}
}

func TestSeqUnassignedWithoutComment(t *testing.T) {
	s := sample()
	s.Seq = profile.SeqUnassigned
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != profile.SeqUnassigned {
		t.Fatalf("seq = %d, want SeqUnassigned (no comment written)", got.Seq)
	}
}

// A realistic two-column Go CPU profile ([samples/count, cpu/nanoseconds],
// multi-frame stacks, no calls column) folds to leaf functions with Calls 0.
func TestDecodeTwoColumnStacks(t *testing.T) {
	// Stacks: [matvec solve main] 80 samples / 0.8s, [solve main] 15 / 0.15s,
	// [io main] 5 / 0.05s. Leaf attribution: matvec 80, solve 15, io 5.
	var top wireWriter
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", "matvec", "solve", "main", "io"}
	vt := func(typ, unit uint64) []byte {
		var w wireWriter
		w.varintField(vtType, typ)
		w.varintField(vtUnit, unit)
		return w.buf
	}
	top.bytesField(fSampleType, vt(1, 2))
	top.bytesField(fSampleType, vt(3, 4))
	addSample := func(locs []uint64, samples, cpu uint64) {
		var sm wireWriter
		sm.packedField(sLocationID, locs)
		sm.packedField(sValue, []uint64{samples, cpu})
		top.bytesField(fSample, sm.buf)
	}
	addSample([]uint64{1, 2, 3}, 80, 800_000_000)
	addSample([]uint64{2, 3}, 15, 150_000_000)
	addSample([]uint64{4, 3}, 5, 50_000_000)
	// Locations 1..4 -> functions 1..4 (matvec, solve, main, io).
	for id := uint64(1); id <= 4; id++ {
		var line wireWriter
		line.varintField(lineFunctionID, id)
		var loc wireWriter
		loc.varintField(locID, id)
		loc.bytesField(locLine, line.buf)
		top.bytesField(fLocation, loc.buf)
		var fn wireWriter
		fn.varintField(fnID, id)
		fn.varintField(fnName, 4+id) // matvec=5, solve=6, main=7, io=8
		top.bytesField(fFunction, fn.buf)
	}
	for _, s := range strs {
		top.bytesField(fStringTab, []byte(s))
	}
	top.varintField(fPeriod, uint64(10*time.Millisecond))
	top.bytesField(fPeriodType, vt(3, 4))

	got, err := Decode(bytes.NewReader(top.buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != profile.SeqUnassigned {
		t.Fatalf("seq = %d, want unassigned", got.Seq)
	}
	want := map[string]struct {
		samples int64
		cpu     time.Duration
	}{
		"matvec": {80, 800 * time.Millisecond},
		"solve":  {15, 150 * time.Millisecond},
		"io":     {5, 50 * time.Millisecond},
	}
	for name, w := range want {
		rec, ok := got.Func(name)
		if !ok || rec.Samples != w.samples || rec.SelfTime != w.cpu || rec.Calls != 0 {
			t.Fatalf("%s = %+v, want samples %d cpu %v calls 0", name, rec, w.samples, w.cpu)
		}
	}
	if rec, ok := got.Func("main"); ok && rec.Samples != 0 {
		t.Fatalf("main is never a leaf, got %+v", rec)
	}
}

// A cpu-only profile (no samples column) recovers histogram counts from the
// period.
func TestDecodeCPUOnlyDerivesSamples(t *testing.T) {
	var top wireWriter
	strs := []string{"", "cpu", "nanoseconds", "f"}
	var vtb wireWriter
	vtb.varintField(vtType, 1)
	vtb.varintField(vtUnit, 2)
	top.bytesField(fSampleType, vtb.buf)
	var sm wireWriter
	sm.packedField(sLocationID, []uint64{1})
	sm.packedField(sValue, []uint64{uint64(500 * time.Millisecond)})
	top.bytesField(fSample, sm.buf)
	var line wireWriter
	line.varintField(lineFunctionID, 1)
	var loc wireWriter
	loc.varintField(locID, 1)
	loc.bytesField(locLine, line.buf)
	top.bytesField(fLocation, loc.buf)
	var fn wireWriter
	fn.varintField(fnID, 1)
	fn.varintField(fnName, 3)
	top.bytesField(fFunction, fn.buf)
	for _, s := range strs {
		top.bytesField(fStringTab, []byte(s))
	}
	top.varintField(fPeriod, uint64(10*time.Millisecond))

	got, err := Decode(bytes.NewReader(top.buf))
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := got.Func("f")
	if !ok || rec.Samples != 50 {
		t.Fatalf("f = %+v, want 50 derived samples (0.5s / 10ms)", rec)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		[]byte("this is not a protobuf at all............"),
		{0x1f, 0x8b, 0x00, 0x00}, // gzip magic, broken stream
	}
	for _, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Fatalf("decoded garbage % x", data[:8])
		}
	}
}

func TestDecodeRejectsDanglingReferences(t *testing.T) {
	// A sample pointing at a location that was never defined.
	var top wireWriter
	var vtb wireWriter
	vtb.varintField(vtType, 1)
	vtb.varintField(vtUnit, 2)
	top.bytesField(fSampleType, vtb.buf)
	var sm wireWriter
	sm.packedField(sLocationID, []uint64{99})
	sm.packedField(sValue, []uint64{1})
	top.bytesField(fSample, sm.buf)
	for _, s := range []string{"", "samples", "count"} {
		top.bytesField(fStringTab, []byte(s))
	}
	if _, err := Decode(bytes.NewReader(top.buf)); err == nil {
		t.Fatal("accepted a sample referencing an unknown location")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 3, len(full) / 2, len(full) - 1} {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("decoded a %d-byte truncation of a %d-byte profile", cut, len(full))
		}
	}
}

func TestDecodeSkipsUnknownFields(t *testing.T) {
	// Append fields this decoder does not know (mapping = 3, drop_frames = 7,
	// a fixed64 and a fixed32) — per protobuf rules they must be skipped.
	s := sample()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(gz); err != nil {
		t.Fatal(err)
	}
	var extra wireWriter
	extra.buf = append(extra.buf, raw.Bytes()...)
	extra.bytesField(3, []byte{0x08, 0x01}) // Mapping{id:1}
	extra.varintField(7, 5)
	extra.tag(20, wtI64)
	extra.buf = append(extra.buf, 1, 2, 3, 4, 5, 6, 7, 8)
	extra.tag(21, wtI32)
	extra.buf = append(extra.buf, 1, 2, 3, 4)
	got, err := Decode(bytes.NewReader(extra.buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("unknown fields changed the decoded sample")
	}
}

func TestDecodeRejectsBadSeqComment(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	gz, _ := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	raw := new(bytes.Buffer)
	raw.ReadFrom(gz)
	// Graft a comment "seq=bogus" onto the raw proto: string indices follow
	// field order, so one more string_table entry gets index n (the current
	// table length, counted by walking the message).
	var w wireWriter
	w.buf = append(w.buf, raw.Bytes()...)
	n := 0
	r := &wireReader{data: raw.Bytes()}
	for !r.done() {
		num, wt, err := r.tag()
		if err != nil {
			t.Fatal(err)
		}
		if num == fStringTab {
			if _, err := r.bytes(); err != nil {
				t.Fatal(err)
			}
			n++
		} else if err := r.skip(wt); err != nil {
			t.Fatal(err)
		}
	}
	w.bytesField(fStringTab, []byte("seq=bogus"))
	w.packedField(fComment, []uint64{uint64(n)})
	if _, err := Decode(bytes.NewReader(w.buf)); err == nil {
		t.Fatal("accepted a non-numeric seq comment")
	}
}

func BenchmarkDecode(b *testing.B) {
	s := sample()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

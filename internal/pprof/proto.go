// proto.go is a minimal protobuf wire codec — just the varint/length-
// delimited framing the pprof Profile message needs, hand-rolled so the
// frontend has no dependency beyond the standard library. The decoder is
// tolerant of unknown fields (skipped by wire type, as protobuf requires)
// and of both packed and unpacked repeated scalars; the encoder always
// writes packed, matching what the Go runtime's profile writer emits.
package pprof

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire types from the protobuf encoding spec.
const (
	wtVarint = 0
	wtI64    = 1
	wtLen    = 2
	wtI32    = 5
)

var errTruncated = errors.New("pprof: truncated protobuf payload")

// wireReader walks one serialized message.
type wireReader struct {
	data []byte
	pos  int
}

func (r *wireReader) done() bool { return r.pos >= len(r.data) }

func (r *wireReader) varint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	r.pos += n
	return v, nil
}

// tag reads one field tag, returning the field number and wire type.
func (r *wireReader) tag() (int, int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	num := int(v >> 3)
	if num == 0 {
		return 0, 0, fmt.Errorf("pprof: invalid field number 0")
	}
	return num, int(v & 7), nil
}

// bytes reads one length-delimited payload.
func (r *wireReader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos) {
		return nil, errTruncated
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

// skip discards one field value of the given wire type.
func (r *wireReader) skip(wt int) error {
	switch wt {
	case wtVarint:
		_, err := r.varint()
		return err
	case wtI64:
		if len(r.data)-r.pos < 8 {
			return errTruncated
		}
		r.pos += 8
		return nil
	case wtLen:
		_, err := r.bytes()
		return err
	case wtI32:
		if len(r.data)-r.pos < 4 {
			return errTruncated
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("pprof: unsupported wire type %d", wt)
	}
}

// uints reads a repeated unsigned varint field: either one packed
// length-delimited run or a single value, per the tag's wire type.
func (r *wireReader) uints(wt int, into []uint64) ([]uint64, error) {
	if wt == wtVarint {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return append(into, v), nil
	}
	if wt != wtLen {
		return nil, fmt.Errorf("pprof: repeated scalar with wire type %d", wt)
	}
	b, err := r.bytes()
	if err != nil {
		return nil, err
	}
	inner := &wireReader{data: b}
	for !inner.done() {
		v, err := inner.varint()
		if err != nil {
			return nil, err
		}
		into = append(into, v)
	}
	return into, nil
}

// wireWriter builds one serialized message.
type wireWriter struct {
	buf []byte
}

func (w *wireWriter) uvarint(v uint64) {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], v)
	w.buf = append(w.buf, scratch[:n]...)
}

func (w *wireWriter) tag(num, wt int) {
	w.uvarint(uint64(num)<<3 | uint64(wt))
}

// varintField writes a varint-typed field, omitting the proto3 zero default.
func (w *wireWriter) varintField(num int, v uint64) {
	if v == 0 {
		return
	}
	w.tag(num, wtVarint)
	w.uvarint(v)
}

// bytesField writes a length-delimited field (sub-message or string).
func (w *wireWriter) bytesField(num int, b []byte) {
	w.tag(num, wtLen)
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// packedField writes a repeated scalar field packed.
func (w *wireWriter) packedField(num int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner wireWriter
	for _, v := range vs {
		inner.uvarint(v)
	}
	w.bytesField(num, inner.buf)
}

// codec.go is the canonical binary serialization of a Sample: the
// repository's internal wire format. Dump stores write it, the checkpoint
// WAL embeds it, and the gmon frontend registers it as its on-disk dump
// encoding. The magic is "IGMN" for compatibility with every dump, WAL, and
// fuzz corpus written before the type moved out of package gmon — the bytes
// are identical, only the owning package changed.
package profile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Magic identifies the canonical binary sample format.
const Magic = "IGMN"

// Version is the binary format version written by Encode.
const Version = 1

// maxCount caps name/record counts while decoding, guarding against
// corrupted length prefixes.
const maxCount = 1 << 22

// Encode writes the sample in the canonical binary format. The sample
// should be normalized first for deterministic output.
func (s *Sample) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putString := func(str string) error {
		if err := putUvarint(uint64(len(str))); err != nil {
			return err
		}
		_, err := bw.WriteString(str)
		return err
	}
	if err := putUvarint(Version); err != nil {
		return err
	}
	if err := putVarint(int64(s.Seq)); err != nil {
		return err
	}
	if err := putVarint(int64(s.Timestamp)); err != nil {
		return err
	}
	if err := putVarint(int64(s.SamplePeriod)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(s.Funcs))); err != nil {
		return err
	}
	for _, f := range s.Funcs {
		if err := putString(f.Name); err != nil {
			return err
		}
		if err := putVarint(f.Samples); err != nil {
			return err
		}
		if err := putVarint(int64(f.SelfTime)); err != nil {
			return err
		}
		if err := putVarint(f.Calls); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(len(s.Arcs))); err != nil {
		return err
	}
	for _, a := range s.Arcs {
		if err := putString(a.Caller); err != nil {
			return err
		}
		if err := putString(a.Callee); err != nil {
			return err
		}
		if err := putVarint(a.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a sample previously written by Encode.
func Decode(r io.Reader) (*Sample, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("profile: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("profile: bad magic %q", magic)
	}
	getUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	getVarint := func() (int64, error) { return binary.ReadVarint(br) }
	getString := func() (string, error) {
		n, err := getUvarint()
		if err != nil {
			return "", err
		}
		if n > maxCount {
			return "", fmt.Errorf("profile: string length %d too large", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	ver, err := getUvarint()
	if err != nil {
		return nil, fmt.Errorf("profile: reading version: %w", err)
	}
	if ver != Version {
		return nil, fmt.Errorf("profile: unsupported version %d", ver)
	}
	s := &Sample{}
	seq, err := getVarint()
	if err != nil {
		return nil, err
	}
	// Field validation: a dump produced by Encode always carries
	// non-negative header fields and counters (they are cumulative counts
	// and virtual times), so anything negative is corruption — reject it
	// here rather than letting a fabricated value distort the downstream
	// gap arithmetic.
	if seq < 0 || seq > math.MaxInt32 {
		return nil, fmt.Errorf("profile: sequence number %d out of range", seq)
	}
	s.Seq = int(seq)
	ts, err := getVarint()
	if err != nil {
		return nil, err
	}
	if ts < 0 {
		return nil, fmt.Errorf("profile: negative timestamp %d", ts)
	}
	s.Timestamp = time.Duration(ts)
	sp, err := getVarint()
	if err != nil {
		return nil, err
	}
	if sp < 0 {
		return nil, fmt.Errorf("profile: negative sample period %d", sp)
	}
	s.SamplePeriod = time.Duration(sp)
	nf, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if nf > maxCount {
		return nil, fmt.Errorf("profile: function count %d too large", nf)
	}
	if nf > 0 {
		s.Funcs = make([]FuncRecord, nf)
	}
	for i := range s.Funcs {
		f := &s.Funcs[i]
		if f.Name, err = getString(); err != nil {
			return nil, err
		}
		if f.Samples, err = getVarint(); err != nil {
			return nil, err
		}
		st, err := getVarint()
		if err != nil {
			return nil, err
		}
		f.SelfTime = time.Duration(st)
		if f.Calls, err = getVarint(); err != nil {
			return nil, err
		}
		if f.Samples < 0 || st < 0 || f.Calls < 0 {
			return nil, fmt.Errorf("profile: negative counters for %q", f.Name)
		}
	}
	na, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if na > maxCount {
		return nil, fmt.Errorf("profile: arc count %d too large", na)
	}
	if na > 0 {
		s.Arcs = make([]Arc, na)
	}
	for i := range s.Arcs {
		a := &s.Arcs[i]
		if a.Caller, err = getString(); err != nil {
			return nil, err
		}
		if a.Callee, err = getString(); err != nil {
			return nil, err
		}
		if a.Count, err = getVarint(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

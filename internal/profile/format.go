// format.go is the frontend registry: every supported on-disk profile
// encoding registers a Format (from its package's init), and the dump
// readers — batch load, live tail, the phasedetect CLI — drive decoding
// purely through it. Adding a profiler format to the system means
// implementing Decode for it and calling Register; nothing downstream
// changes.
package profile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrNoDumps is wrapped by DetectDir when a directory holds no file named
// under any registered format's scheme — distinguishable (errors.Is) from
// the mixed-format error, so a tailer can keep waiting for the first dump
// but fail fast on a genuinely mixed directory.
var ErrNoDumps = errors.New("no recognizable profile dumps")

// Format describes one on-disk profile encoding a frontend contributes.
type Format struct {
	// Name is the short format name ("gmon", "pprof", "perf").
	Name string
	// FilePrefix is the dump file naming scheme: one dump per interval,
	// named FilePrefix + strconv.Itoa(seq) (e.g. "gmon.out.7").
	FilePrefix string
	// Detect reports whether data (a file's leading bytes) looks like
	// this format — the magic-byte sniff behind -format auto and the
	// mixed-directory diagnostics.
	Detect func(data []byte) bool
	// Decode reads one cumulative dump. Decoders whose container carries
	// no sequence number return Seq = SeqUnassigned and let the caller
	// assign it from context (the file name).
	Decode func(r io.Reader) (*Sample, error)
	// Encode writes one dump in this format, for stores and fixtures.
	// Lossy formats drop what they cannot represent (a perf stream has no
	// exact self time or call counts); decoding back yields the honest
	// degraded sample, never an error.
	Encode func(w io.Writer, s *Sample) error
}

var (
	formatMu  sync.RWMutex
	formats   = map[string]*Format{}
	byPrefix  = map[string]*Format{}
	nameOrder []string
)

// Register adds a format to the registry. It panics on a duplicate name or
// file prefix and is meant to be called from frontend init functions.
func Register(f *Format) {
	if f.Name == "" || f.FilePrefix == "" || f.Decode == nil {
		panic("profile: Register needs Name, FilePrefix, and Decode")
	}
	formatMu.Lock()
	defer formatMu.Unlock()
	if _, dup := formats[f.Name]; dup {
		panic(fmt.Sprintf("profile: duplicate format %q", f.Name))
	}
	if _, dup := byPrefix[f.FilePrefix]; dup {
		panic(fmt.Sprintf("profile: duplicate file prefix %q", f.FilePrefix))
	}
	formats[f.Name] = f
	byPrefix[f.FilePrefix] = f
	nameOrder = append(nameOrder, f.Name)
	sort.Strings(nameOrder)
}

// Lookup returns the named format.
func Lookup(name string) (*Format, bool) {
	formatMu.RLock()
	defer formatMu.RUnlock()
	f, ok := formats[name]
	return f, ok
}

// Formats returns the registered formats sorted by name.
func Formats() []*Format {
	formatMu.RLock()
	defer formatMu.RUnlock()
	out := make([]*Format, 0, len(nameOrder))
	for _, n := range nameOrder {
		out = append(out, formats[n])
	}
	return out
}

// Names returns the registered format names in sorted order.
func Names() []string {
	formatMu.RLock()
	defer formatMu.RUnlock()
	return append([]string(nil), nameOrder...)
}

// Sniff returns the first registered format (in name order) whose Detect
// accepts the given leading bytes, or nil.
func Sniff(data []byte) *Format {
	for _, f := range Formats() {
		if f.Detect != nil && f.Detect(data) {
			return f
		}
	}
	return nil
}

// SeqFromName parses the sequence number out of a dump file name under the
// format's naming scheme, reporting whether the name belongs to the format
// at all.
func (f *Format) SeqFromName(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, f.FilePrefix)
	if !ok {
		return 0, false
	}
	seq, err := strconv.Atoi(rest)
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// FileName returns the dump file name for the given sequence number.
func (f *Format) FileName(seq int) string {
	return f.FilePrefix + strconv.Itoa(seq)
}

// DetectDir inspects the file names under dir and returns the single
// registered format whose dumps live there. A directory holding dumps of
// more than one format is an error naming each family and its file count —
// the operator picked the wrong directory or merged two runs, and silently
// analyzing one family would misreport the run. A directory with no
// recognizable dumps is likewise an error listing the known schemes.
func DetectDir(dir string) (*Format, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		for _, f := range Formats() {
			if _, ok := f.SeqFromName(e.Name()); ok {
				counts[f.Name]++
				break
			}
		}
	}
	switch len(counts) {
	case 0:
		return nil, fmt.Errorf("profile: %w in %s (known schemes: %s)",
			ErrNoDumps, dir, strings.Join(prefixList(), ", "))
	case 1:
		for name := range counts {
			f, _ := Lookup(name)
			return f, nil
		}
	}
	parts := make([]string, 0, len(counts))
	for name := range counts {
		parts = append(parts, name)
	}
	sort.Strings(parts)
	for i, name := range parts {
		parts[i] = fmt.Sprintf("%s (%d files)", name, counts[name])
	}
	return nil, fmt.Errorf("profile: %s holds dumps of multiple formats: %s; pass -format to pick one",
		dir, strings.Join(parts, ", "))
}

func prefixList() []string {
	out := make([]string, 0)
	for _, f := range Formats() {
		out = append(out, f.FilePrefix+"N")
	}
	return out
}

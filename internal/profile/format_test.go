package profile

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// The profile package itself registers nothing: frontends do. Tests get two
// synthetic formats so the registry logic is exercised without importing any
// real frontend (which would create an import cycle for this package).
func init() {
	for _, name := range []string{"alpha", "beta"} {
		magic := []byte(name + "!")
		Register(&Format{
			Name:       name,
			FilePrefix: name + ".out.",
			Detect: func(data []byte) bool {
				return bytes.HasPrefix(data, magic)
			},
			Decode: func(r io.Reader) (*Sample, error) {
				head := make([]byte, len(magic))
				if _, err := io.ReadFull(r, head); err != nil || !bytes.Equal(head, magic) {
					return nil, errors.New("bad test-format magic")
				}
				return &Sample{Seq: SeqUnassigned, SamplePeriod: 1}, nil
			},
			Encode: func(w io.Writer, s *Sample) error {
				_, err := w.Write(magic)
				return err
			},
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	f, ok := Lookup("alpha")
	if !ok || f.FilePrefix != "alpha.out." {
		t.Fatalf("Lookup(alpha) = %+v, %v", f, ok)
	}
	if _, ok := Lookup("nosuch"); ok {
		t.Fatal("found an unregistered format")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	for _, f := range []*Format{
		{Name: "alpha", FilePrefix: "other.", Decode: func(io.Reader) (*Sample, error) { return nil, nil }},
		{Name: "other", FilePrefix: "alpha.out.", Decode: func(io.Reader) (*Sample, error) { return nil, nil }},
		{Name: "", FilePrefix: "x.", Decode: func(io.Reader) (*Sample, error) { return nil, nil }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%+v) did not panic", f)
				}
			}()
			Register(f)
		}()
	}
}

func TestSeqFromName(t *testing.T) {
	f, _ := Lookup("alpha")
	cases := []struct {
		name string
		seq  int
		ok   bool
	}{
		{"alpha.out.0", 0, true},
		{"alpha.out.12", 12, true},
		{"alpha.out.", 0, false},
		{"alpha.out.x", 0, false},
		{"alpha.out.-1", 0, false},
		{"beta.out.3", 0, false},
		{"README", 0, false},
	}
	for _, c := range cases {
		seq, ok := f.SeqFromName(c.name)
		if ok != c.ok || (ok && seq != c.seq) {
			t.Fatalf("SeqFromName(%q) = %d, %v; want %d, %v", c.name, seq, ok, c.seq, c.ok)
		}
	}
	if got := f.FileName(7); got != "alpha.out.7" {
		t.Fatalf("FileName(7) = %q", got)
	}
}

func TestSniff(t *testing.T) {
	if f := Sniff([]byte("beta!data")); f == nil || f.Name != "beta" {
		t.Fatalf("Sniff(beta magic) = %v", f)
	}
	if f := Sniff([]byte("unknown bytes")); f != nil {
		t.Fatalf("Sniff(garbage) = %v", f)
	}
}

func touch(t *testing.T, dir, name string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDetectDirSingleFormat(t *testing.T) {
	dir := t.TempDir()
	touch(t, dir, "alpha.out.0")
	touch(t, dir, "alpha.out.1")
	touch(t, dir, "README") // junk is ignored
	f, err := DetectDir(dir)
	if err != nil || f.Name != "alpha" {
		t.Fatalf("DetectDir = %v, %v", f, err)
	}
}

func TestDetectDirEmpty(t *testing.T) {
	dir := t.TempDir()
	touch(t, dir, "notes.txt")
	_, err := DetectDir(dir)
	if err == nil || !errors.Is(err, ErrNoDumps) {
		t.Fatalf("DetectDir(empty) = %v, want ErrNoDumps", err)
	}
}

func TestDetectDirMixed(t *testing.T) {
	dir := t.TempDir()
	touch(t, dir, "alpha.out.0")
	touch(t, dir, "beta.out.0")
	touch(t, dir, "beta.out.1")
	_, err := DetectDir(dir)
	if err == nil || errors.Is(err, ErrNoDumps) {
		t.Fatalf("DetectDir(mixed) = %v, want mixed-format error", err)
	}
	for _, want := range []string{"alpha (1 files)", "beta (2 files)", "-format"} {
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("mixed error %q missing %q", err, want)
		}
	}
}

package profile

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the canonical binary decoder against corrupted input:
// it must error or succeed, never panic or over-allocate.
func FuzzDecode(f *testing.F) {
	s := sample()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte("IGMN\x01\x00\x00\x00\xff\xff\xff\xff\x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err == nil && s == nil {
			t.Fatal("nil sample with nil error")
		}
	})
}

// Package profile defines the format-neutral profile sample every frontend
// decodes into and the one streaming analysis core consumes: a timestamped,
// cumulative per-site utilization snapshot with Seq identity.
//
// A Sample holds, per function, the sampled self-time histogram count, the
// exact self time (an extension real sampling profilers cannot provide; used
// for ablations), and the call count — plus caller→callee arcs. Samples are
// cumulative since program start, exactly like gmon.out or a Go CPU profile
// taken mid-run: package interval turns consecutive samples into
// per-interval profiles by subtraction, so any profiler that can emit a
// cumulative dump once per interval can drive phase detection.
//
// The package also owns the canonical binary serialization (Encode/Decode)
// — the repository's internal wire format, used by the dump stores and the
// checkpoint WAL — and the Format registry through which frontends (gmon,
// pprof, perf script, ...) plug their own on-disk encodings into the dump
// readers. The analysis core never names a frontend: everything downstream
// of a Format.Decode call sees only *Sample.
package profile

import (
	"sort"
	"time"
)

// FuncRecord is the per-function content of a sample.
type FuncRecord struct {
	Name string
	// Samples is the number of profiling-clock samples attributed to the
	// function, cumulative since program start. Sampled self time is
	// Samples * SamplePeriod.
	Samples int64
	// SelfTime is the exactly-accounted self time (not available from
	// real sampling profilers; kept for the feature-choice ablation).
	SelfTime time.Duration
	// Calls is the number of invocations, cumulative since program start
	// (gprof's mcount). Frontends whose format carries no call counts
	// leave it zero.
	Calls int64
}

// Arc is a call-graph edge with an invocation count.
type Arc struct {
	Caller string
	Callee string
	Count  int64
}

// Sample is one cumulative profile dump.
type Sample struct {
	// Seq is the dump's sequence number (0-based interval index). A
	// frontend decoder whose container carries no sequence number returns
	// SeqUnassigned; the directory readers then assign the number parsed
	// from the dump's file name.
	Seq int
	// Timestamp is the virtual time of the dump since run start.
	Timestamp time.Duration
	// SamplePeriod is the profiling clock period in effect.
	SamplePeriod time.Duration
	// Funcs holds per-function records sorted by name.
	Funcs []FuncRecord
	// Arcs holds call-graph edges sorted by (caller, callee).
	Arcs []Arc
}

// SeqUnassigned is the Seq sentinel a frontend decoder returns when its
// container format has no sequence number of its own (a bare pprof or perf
// file): the surrounding reader assigns the sequence from context, usually
// the file name.
const SeqUnassigned = -1

// Normalize sorts the function records by name and arcs by (caller, callee)
// so that samples compare and encode deterministically.
func (s *Sample) Normalize() {
	sort.Slice(s.Funcs, func(i, j int) bool { return s.Funcs[i].Name < s.Funcs[j].Name })
	sort.Slice(s.Arcs, func(i, j int) bool {
		if s.Arcs[i].Caller != s.Arcs[j].Caller {
			return s.Arcs[i].Caller < s.Arcs[j].Caller
		}
		return s.Arcs[i].Callee < s.Arcs[j].Callee
	})
}

// Func returns the record for name and whether it is present. Funcs must be
// sorted (see Normalize); samples produced by the profiler already are.
func (s *Sample) Func(name string) (FuncRecord, bool) {
	i := sort.Search(len(s.Funcs), func(i int) bool { return s.Funcs[i].Name >= name })
	if i < len(s.Funcs) && s.Funcs[i].Name == name {
		return s.Funcs[i], true
	}
	return FuncRecord{}, false
}

// SampledSelf returns the function's sampled self time
// (Samples × SamplePeriod).
func (s *Sample) SampledSelf(rec FuncRecord) time.Duration {
	return time.Duration(rec.Samples) * s.SamplePeriod
}

// TotalSampledSelf returns the sum of sampled self time over all functions.
func (s *Sample) TotalSampledSelf() time.Duration {
	var n int64
	for _, f := range s.Funcs {
		n += f.Samples
	}
	return time.Duration(n) * s.SamplePeriod
}

// Clone returns a deep copy of the sample.
func (s *Sample) Clone() *Sample {
	c := *s
	c.Funcs = append([]FuncRecord(nil), s.Funcs...)
	c.Arcs = append([]Arc(nil), s.Arcs...)
	return &c
}

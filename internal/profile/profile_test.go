package profile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sample() *Sample {
	s := &Sample{
		Seq:          3,
		Timestamp:    4 * time.Second,
		SamplePeriod: 10 * time.Millisecond,
		Funcs: []FuncRecord{
			{Name: "run_bfs", Samples: 120, SelfTime: 1205 * time.Millisecond, Calls: 7},
			{Name: "make_one_edge", Samples: 30, SelfTime: 301 * time.Millisecond, Calls: 90000},
			{Name: "validate_bfs_result", Samples: 250, SelfTime: 2498 * time.Millisecond, Calls: 2},
		},
		Arcs: []Arc{
			{Caller: "main", Callee: "run_bfs", Count: 7},
			{Caller: "main", Callee: "validate_bfs_result", Count: 2},
		},
	}
	s.Normalize()
	return s
}

func TestNormalizeSorts(t *testing.T) {
	s := sample()
	for i := 1; i < len(s.Funcs); i++ {
		if s.Funcs[i-1].Name >= s.Funcs[i].Name {
			t.Fatalf("funcs not sorted: %v", s.Funcs)
		}
	}
	for i := 1; i < len(s.Arcs); i++ {
		a, b := s.Arcs[i-1], s.Arcs[i]
		if a.Caller > b.Caller || (a.Caller == b.Caller && a.Callee >= b.Callee) {
			t.Fatalf("arcs not sorted: %v", s.Arcs)
		}
	}
}

func TestFuncLookup(t *testing.T) {
	s := sample()
	rec, ok := s.Func("run_bfs")
	if !ok || rec.Calls != 7 {
		t.Fatalf("Func(run_bfs) = %+v, %v", rec, ok)
	}
	if _, ok := s.Func("nonexistent"); ok {
		t.Fatal("found a function that is not there")
	}
}

func TestSampledSelf(t *testing.T) {
	s := sample()
	rec, _ := s.Func("run_bfs")
	if got := s.SampledSelf(rec); got != 1200*time.Millisecond {
		t.Fatalf("SampledSelf = %v, want 1.2s", got)
	}
	if got := s.TotalSampledSelf(); got != 4*time.Second {
		t.Fatalf("TotalSampledSelf = %v, want 4s (400 samples x 10ms)", got)
	}
}

func TestClone(t *testing.T) {
	s := sample()
	c := s.Clone()
	c.Funcs[0].Samples = 999999
	c.Arcs[0].Count = 999999
	if s.Funcs[0].Samples == 999999 || s.Arcs[0].Count == 999999 {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	s := sample()
	var a, b bytes.Buffer
	if err := s.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := Decode(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("decoded garbage")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, len(Magic), len(full) / 2, len(full) - 1} {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("decoded a %d-byte truncation of a %d-byte sample", cut, len(full))
		}
	}
}

func TestDecodeRejectsHugeCounts(t *testing.T) {
	// Craft a header claiming an absurd function count.
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(Version)                          // version uvarint
	buf.WriteByte(0)                                // seq
	buf.WriteByte(0)                                // timestamp
	buf.WriteByte(0)                                // sample period
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}) // huge nfuncs
	if _, err := Decode(&buf); err == nil {
		t.Fatal("accepted absurd function count")
	}
}

func TestEmptySampleRoundTrip(t *testing.T) {
	s := &Sample{Seq: 0, SamplePeriod: time.Millisecond}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Funcs) != 0 || len(got.Arcs) != 0 || got.SamplePeriod != time.Millisecond {
		t.Fatalf("empty round trip: %+v", got)
	}
}

// Property: binary round trip is the identity for arbitrary well-formed
// samples.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(names []string, samples []uint16, calls []uint16, seq uint8) bool {
		s := &Sample{Seq: int(seq), Timestamp: time.Duration(seq) * time.Second, SamplePeriod: 10 * time.Millisecond}
		seen := map[string]bool{}
		for i, n := range names {
			if i >= 32 {
				break
			}
			if n == "" || seen[n] {
				continue
			}
			seen[n] = true
			rec := FuncRecord{Name: n}
			if i < len(samples) {
				rec.Samples = int64(samples[i])
				rec.SelfTime = time.Duration(samples[i]) * 10 * time.Millisecond
			}
			if i < len(calls) {
				rec.Calls = int64(calls[i])
			}
			s.Funcs = append(s.Funcs, rec)
		}
		s.Normalize()
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(s, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	s := sample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	s := sample()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// Package profiler implements the gprof data-collection model over the
// instrumented execution runtime.
//
// Like gprof, it combines two mechanisms (paper §IV):
//
//   - a sampling profiling clock: a periodic virtual timer attributes one
//     sample to whichever function is executing when it fires, yielding the
//     per-function self-time histogram with sampling quantization (short
//     functions can be missed, exactly as with real gprof);
//   - function-entry instrumentation (mcount): exact call counts and
//     caller→callee arc counts.
//
// The profiler additionally keeps exactly-accounted self time from the
// runtime's Advance events. Real gprof cannot provide this; it exists for
// the feature-choice ablation (DESIGN.md A3) and for tests that need ground
// truth to compare the sampled histogram against.
//
// Snapshot produces a cumulative profile.Sample, which is what the IncProf
// collector dumps once per interval.
package profiler

import (
	"time"

	"github.com/incprof/incprof/internal/exec"
	"github.com/incprof/incprof/internal/profile"
	"github.com/incprof/incprof/internal/vclock"
)

// DefaultSamplePeriod matches gprof's customary 100 Hz profiling clock.
const DefaultSamplePeriod = 10 * time.Millisecond

type arcKey struct {
	caller exec.FuncID
	callee exec.FuncID
}

// Profiler collects gprof-style cumulative profile data from a Runtime.
type Profiler struct {
	rt     *exec.Runtime
	period time.Duration
	ticker *vclock.Ticker

	samples  []int64 // indexed by FuncID
	selfTime []time.Duration
	calls    []int64
	arcs     map[arcKey]int64

	idleSamples int64 // profiling-clock ticks with no function executing
	dumps       int   // snapshots taken so far; becomes the next Seq
	stopped     bool
}

// New attaches a profiler to rt with the given sampling period (0 means
// DefaultSamplePeriod). The profiler starts collecting immediately.
func New(rt *exec.Runtime, period time.Duration) *Profiler {
	if period < 0 {
		panic("profiler: negative sample period")
	}
	if period == 0 {
		period = DefaultSamplePeriod
	}
	p := &Profiler{rt: rt, period: period, arcs: make(map[arcKey]int64)}
	rt.AddListener(p)
	p.ticker = rt.Clock().NewTickerPriority(period, vclock.PrioritySampler, p.sampleTick)
	return p
}

// SamplePeriod returns the profiling clock period.
func (p *Profiler) SamplePeriod() time.Duration { return p.period }

// Stop detaches the profiler from the runtime; collected data remains
// available via Snapshot. Stop is idempotent.
func (p *Profiler) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.ticker.Stop()
	p.rt.RemoveListener(p)
}

// sampleTick is the profiling clock interrupt: charge one sample to the
// running function.
func (p *Profiler) sampleTick(vclock.Time) {
	fn := p.rt.Current()
	if fn == exec.NoFunc {
		p.idleSamples++
		return
	}
	p.grow(fn)
	p.samples[fn]++
}

// grow ensures the per-function slices cover fn, since functions may be
// registered after the profiler attaches.
func (p *Profiler) grow(fn exec.FuncID) {
	need := int(fn) + 1
	for len(p.samples) < need {
		p.samples = append(p.samples, 0)
		p.selfTime = append(p.selfTime, 0)
		p.calls = append(p.calls, 0)
	}
}

// Enter implements exec.Listener: the mcount hook.
func (p *Profiler) Enter(fn exec.FuncID, _ vclock.Time) {
	p.grow(fn)
	p.calls[fn]++
	if caller := p.rt.Caller(); caller != exec.NoFunc {
		p.arcs[arcKey{caller, fn}]++
	}
}

// Exit implements exec.Listener.
func (p *Profiler) Exit(exec.FuncID, vclock.Time) {}

// Advance implements exec.Listener: exact self-time accounting.
func (p *Profiler) Advance(fn exec.FuncID, d time.Duration, _ vclock.Time) {
	p.grow(fn)
	p.selfTime[fn] += d
}

// IdleSamples reports profiling-clock ticks that found no function running.
func (p *Profiler) IdleSamples() int64 { return p.idleSamples }

// TotalSamples reports all profiling-clock ticks so far (busy + idle) — the
// number of SIGPROF-equivalent interrupts the overhead model charges for.
func (p *Profiler) TotalSamples() int64 {
	n := p.idleSamples
	for _, s := range p.samples {
		n += s
	}
	return n
}

// TotalCalls reports all instrumented calls so far — the number of mcount
// executions the overhead model charges for.
func (p *Profiler) TotalCalls() int64 {
	var n int64
	for _, c := range p.calls {
		n += c
	}
	return n
}

// Calls returns the cumulative call count for fn.
func (p *Profiler) Calls(fn exec.FuncID) int64 {
	if int(fn) >= len(p.calls) || fn < 0 {
		return 0
	}
	return p.calls[fn]
}

// Samples returns the cumulative sample count for fn.
func (p *Profiler) Samples(fn exec.FuncID) int64 {
	if int(fn) >= len(p.samples) || fn < 0 {
		return 0
	}
	return p.samples[fn]
}

// SelfTime returns the exactly-accounted cumulative self time for fn.
func (p *Profiler) SelfTime(fn exec.FuncID) time.Duration {
	if int(fn) >= len(p.selfTime) || fn < 0 {
		return 0
	}
	return p.selfTime[fn]
}

// Snapshot returns the cumulative profile as of the current virtual time.
// Sequence numbers increment per call, mirroring IncProf's per-interval file
// naming. The result is normalized (sorted) and independent of the
// profiler's internal state.
func (p *Profiler) Snapshot() *profile.Sample {
	s := &profile.Sample{
		Seq:          p.dumps,
		Timestamp:    p.rt.Now().Duration(),
		SamplePeriod: p.period,
	}
	p.dumps++
	funcs := p.rt.Funcs()
	s.Funcs = make([]profile.FuncRecord, 0, len(funcs))
	for _, fi := range funcs {
		s.Funcs = append(s.Funcs, profile.FuncRecord{
			Name:     fi.Name,
			Samples:  p.Samples(fi.ID),
			SelfTime: p.SelfTime(fi.ID),
			Calls:    p.Calls(fi.ID),
		})
	}
	s.Arcs = make([]profile.Arc, 0, len(p.arcs))
	for k, n := range p.arcs {
		s.Arcs = append(s.Arcs, profile.Arc{
			Caller: p.rt.FuncName(k.caller),
			Callee: p.rt.FuncName(k.callee),
			Count:  n,
		})
	}
	s.Normalize()
	return s
}

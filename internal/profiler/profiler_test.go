package profiler

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/incprof/incprof/internal/exec"
)

func TestCallCounting(t *testing.T) {
	rt := exec.New(nil)
	p := New(rt, 0)
	f := rt.Register("f")
	g := rt.Register("g")
	rt.Call(f, func() {
		for i := 0; i < 5; i++ {
			rt.Call(g, func() {})
		}
	})
	if got := p.Calls(f); got != 1 {
		t.Fatalf("Calls(f) = %d, want 1", got)
	}
	if got := p.Calls(g); got != 5 {
		t.Fatalf("Calls(g) = %d, want 5", got)
	}
}

func TestSamplingAttributesSelfTime(t *testing.T) {
	rt := exec.New(nil)
	p := New(rt, 10*time.Millisecond)
	f := rt.Register("f")
	g := rt.Register("g")
	rt.Call(f, func() {
		rt.Work(1 * time.Second) // 100 ticks inside f
		rt.Call(g, func() {
			rt.Work(500 * time.Millisecond) // 50 ticks inside g
		})
	})
	if got := p.Samples(f); got != 100 {
		t.Fatalf("Samples(f) = %d, want 100", got)
	}
	if got := p.Samples(g); got != 50 {
		t.Fatalf("Samples(g) = %d, want 50", got)
	}
}

func TestSelfTimeIsSelfNotInclusive(t *testing.T) {
	rt := exec.New(nil)
	p := New(rt, time.Millisecond)
	parent := rt.Register("parent")
	child := rt.Register("child")
	rt.Call(parent, func() {
		rt.Work(100 * time.Millisecond)
		rt.Call(child, func() { rt.Work(300 * time.Millisecond) })
		rt.Work(100 * time.Millisecond)
	})
	if got := p.SelfTime(parent); got != 200*time.Millisecond {
		t.Fatalf("SelfTime(parent) = %v, want 200ms (exclusive of child)", got)
	}
	if got := p.SelfTime(child); got != 300*time.Millisecond {
		t.Fatalf("SelfTime(child) = %v, want 300ms", got)
	}
}

func TestShortFunctionsEscapeSampling(t *testing.T) {
	// A function shorter than the sample period that never spans a tick
	// gets zero samples — gprof's known blindness the paper relies on
	// ("not all functions ... end up represented").
	rt := exec.New(nil)
	p := New(rt, 10*time.Millisecond)
	f := rt.Register("f")
	tiny := rt.Register("tiny")
	rt.Call(f, func() {
		rt.Work(9 * time.Millisecond) // next tick at 10ms
		rt.Call(tiny, func() { rt.Work(500 * time.Microsecond) })
		// tick at 10ms lands back in f
		rt.Work(5 * time.Millisecond)
	})
	if got := p.Samples(tiny); got != 0 {
		t.Fatalf("Samples(tiny) = %d, want 0 (shorter than period, off-tick)", got)
	}
	if got := p.Calls(tiny); got != 1 {
		t.Fatalf("Calls(tiny) = %d, want 1 (mcount still sees it)", got)
	}
	if got := p.SelfTime(tiny); got != 500*time.Microsecond {
		t.Fatalf("exact SelfTime(tiny) = %v", got)
	}
}

func TestIdleSamples(t *testing.T) {
	rt := exec.New(nil)
	p := New(rt, 10*time.Millisecond)
	rt.Clock().Advance(100 * time.Millisecond) // nothing running
	if got := p.IdleSamples(); got != 10 {
		t.Fatalf("IdleSamples = %d, want 10", got)
	}
}

func TestArcs(t *testing.T) {
	rt := exec.New(nil)
	p := New(rt, 0)
	main := rt.Register("main")
	a := rt.Register("a")
	b := rt.Register("b")
	rt.Call(main, func() {
		rt.Call(a, func() {
			rt.Call(b, func() {})
		})
		rt.Call(b, func() {})
		rt.Call(b, func() {})
	})
	s := p.Snapshot()
	wantArcs := map[[2]string]int64{
		{"main", "a"}: 1,
		{"a", "b"}:    1,
		{"main", "b"}: 2,
	}
	if len(s.Arcs) != len(wantArcs) {
		t.Fatalf("arcs = %+v", s.Arcs)
	}
	for _, arc := range s.Arcs {
		if wantArcs[[2]string{arc.Caller, arc.Callee}] != arc.Count {
			t.Fatalf("unexpected arc %+v", arc)
		}
	}
}

func TestSnapshotCumulativeAndSeq(t *testing.T) {
	rt := exec.New(nil)
	p := New(rt, 10*time.Millisecond)
	f := rt.Register("f")
	rt.Call(f, func() { rt.Work(time.Second) })
	s0 := p.Snapshot()
	rt.Call(f, func() { rt.Work(time.Second) })
	s1 := p.Snapshot()

	if s0.Seq != 0 || s1.Seq != 1 {
		t.Fatalf("seqs = %d,%d", s0.Seq, s1.Seq)
	}
	r0, _ := s0.Func("f")
	r1, _ := s1.Func("f")
	if r0.Samples != 100 || r1.Samples != 200 {
		t.Fatalf("samples not cumulative: %d then %d", r0.Samples, r1.Samples)
	}
	if r0.Calls != 1 || r1.Calls != 2 {
		t.Fatalf("calls not cumulative: %d then %d", r0.Calls, r1.Calls)
	}
	if s1.Timestamp != 2*time.Second {
		t.Fatalf("timestamp = %v", s1.Timestamp)
	}
}

func TestSnapshotIndependentOfLaterActivity(t *testing.T) {
	rt := exec.New(nil)
	p := New(rt, 10*time.Millisecond)
	f := rt.Register("f")
	rt.Call(f, func() { rt.Work(time.Second) })
	s := p.Snapshot()
	before, _ := s.Func("f")
	rt.Call(f, func() { rt.Work(time.Second) })
	after, _ := s.Func("f")
	if before.Samples != after.Samples {
		t.Fatal("snapshot mutated by later profiling activity")
	}
}

func TestStopDetaches(t *testing.T) {
	rt := exec.New(nil)
	p := New(rt, 10*time.Millisecond)
	f := rt.Register("f")
	rt.Call(f, func() { rt.Work(time.Second) })
	p.Stop()
	p.Stop() // idempotent
	rt.Call(f, func() { rt.Work(time.Second) })
	if got := p.Samples(f); got != 100 {
		t.Fatalf("Samples after Stop = %d, want 100 (no further collection)", got)
	}
	if got := p.Calls(f); got != 1 {
		t.Fatalf("Calls after Stop = %d, want 1", got)
	}
	if rt.NumListeners() != 0 {
		t.Fatal("profiler still attached after Stop")
	}
}

func TestFunctionsRegisteredLate(t *testing.T) {
	rt := exec.New(nil)
	p := New(rt, 10*time.Millisecond)
	f := rt.Register("f")
	rt.Call(f, func() { rt.Work(100 * time.Millisecond) })
	late := rt.Register("late")
	rt.Call(late, func() { rt.Work(100 * time.Millisecond) })
	if got := p.Samples(late); got != 10 {
		t.Fatalf("Samples(late) = %d, want 10", got)
	}
	s := p.Snapshot()
	if _, ok := s.Func("late"); !ok {
		t.Fatal("late-registered function missing from snapshot")
	}
}

func TestNegativePeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(exec.New(nil), -time.Millisecond)
}

// Property: total samples (busy + idle) equals elapsed time / period, and
// sampled self time never exceeds exact self time by more than one period
// per function "segment" — here we just check totals match the clock.
func TestPropertySampleConservation(t *testing.T) {
	f := func(chunks []uint8) bool {
		if len(chunks) > 40 {
			chunks = chunks[:40]
		}
		rt := exec.New(nil)
		period := 10 * time.Millisecond
		p := New(rt, period)
		fa := rt.Register("a")
		fb := rt.Register("b")
		rt.Call(fa, func() {
			for i, ms := range chunks {
				d := time.Duration(ms) * time.Millisecond
				if i%2 == 0 {
					rt.Work(d)
				} else {
					rt.Call(fb, func() { rt.Work(d) })
				}
			}
		})
		elapsed := rt.Now().Duration()
		wantTicks := int64(elapsed / period)
		total := p.Samples(fa) + p.Samples(fb) + p.IdleSamples()
		return total == wantTicks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: sampled self time converges to exact self time for long-running
// functions (within one period per work segment).
func TestPropertySamplingAccuracy(t *testing.T) {
	f := func(nChunks uint8) bool {
		n := int(nChunks%20) + 1
		rt := exec.New(nil)
		period := 10 * time.Millisecond
		p := New(rt, period)
		fa := rt.Register("a")
		rt.Call(fa, func() {
			for i := 0; i < n; i++ {
				rt.Work(137 * time.Millisecond)
			}
		})
		exact := p.SelfTime(fa)
		sampled := time.Duration(p.Samples(fa)) * period
		diff := exact - sampled
		if diff < 0 {
			diff = -diff
		}
		return diff <= period
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProfiledCall(b *testing.B) {
	rt := exec.New(nil)
	New(rt, 10*time.Millisecond)
	f := rt.Register("f")
	body := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Call(f, body)
	}
}

func BenchmarkSnapshot100Funcs(b *testing.B) {
	rt := exec.New(nil)
	p := New(rt, 10*time.Millisecond)
	main := rt.Register("main")
	ids := make([]exec.FuncID, 100)
	for i := range ids {
		ids[i] = rt.Register("fn" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('0'+i/10)))
	}
	rt.Call(main, func() {
		for _, id := range ids {
			rt.Call(id, func() { rt.Work(time.Millisecond) })
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Snapshot()
	}
}

func TestAccessorsAndTotals(t *testing.T) {
	rt := exec.New(nil)
	p := New(rt, 20*time.Millisecond)
	if p.SamplePeriod() != 20*time.Millisecond {
		t.Fatalf("SamplePeriod = %v", p.SamplePeriod())
	}
	f := rt.Register("f")
	g := rt.Register("g")
	rt.Call(f, func() {
		rt.Work(200 * time.Millisecond)
		rt.Call(g, func() { rt.Work(100 * time.Millisecond) })
	})
	rt.Clock().Advance(100 * time.Millisecond) // idle ticks
	if got := p.TotalCalls(); got != 2 {
		t.Fatalf("TotalCalls = %d", got)
	}
	// 400ms elapsed at 20ms period = 20 ticks, busy + idle.
	if got := p.TotalSamples(); got != 20 {
		t.Fatalf("TotalSamples = %d, want 20", got)
	}
	if got := p.Samples(f) + p.Samples(g) + p.IdleSamples(); got != 20 {
		t.Fatalf("partition = %d", got)
	}
	// Out-of-range accessors are zero, not panics.
	if p.Calls(exec.FuncID(99)) != 0 || p.Samples(exec.FuncID(99)) != 0 || p.SelfTime(exec.FuncID(99)) != 0 {
		t.Fatal("out-of-range accessors nonzero")
	}
	if p.Calls(exec.NoFunc) != 0 || p.SelfTime(exec.NoFunc) != 0 {
		t.Fatal("NoFunc accessors nonzero")
	}
}

func TestZeroPeriodUsesDefault(t *testing.T) {
	rt := exec.New(nil)
	p := New(rt, 0)
	if p.SamplePeriod() != DefaultSamplePeriod {
		t.Fatalf("default period = %v", p.SamplePeriod())
	}
}

// Package report renders the evaluation's tables and figures as aligned
// text, CSV, and ASCII time-series plots. The evaluation harness (package
// harness) builds Table I-VI and Figure 2-6 equivalents with it.
package report

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Table is a column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty, extras are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(bw, t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				bw.WriteString("  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], cell)
		}
		bw.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	fmt.Fprintln(bw, strings.Repeat("-", total))
	for _, row := range t.rows {
		writeRow(row)
	}
	return bw.Flush()
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// Series is one named time series over intervals; missing intervals hold
// NaN-free zeros by construction (callers fill a dense slice).
type Series struct {
	Name   string
	Values []float64
}

// WriteSeriesCSV writes interval-indexed series as CSV with one column per
// series. Shorter series are zero-padded to the longest.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	bw := bufio.NewWriter(w)
	n := 0
	for _, s := range series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	bw.WriteString("interval")
	for _, s := range series {
		fmt.Fprintf(bw, ",%s", strings.ReplaceAll(s.Name, ",", ";"))
	}
	bw.WriteByte('\n')
	for i := 0; i < n; i++ {
		fmt.Fprintf(bw, "%d", i)
		for _, s := range series {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			fmt.Fprintf(bw, ",%.6g", v)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// asciiLevels maps a normalized value to a glyph, darkest = largest.
const asciiLevels = " .:-=+*#%@"

// RenderASCIISeries draws each series as one row of glyphs, value-scaled to
// the series' own maximum, over a shared interval axis compressed to width
// columns. It is the terminal stand-in for the paper's heartbeat figures:
// phase structure appears as runs of activity and gaps.
func RenderASCIISeries(w io.Writer, title string, series []Series, width int) error {
	if width <= 0 {
		width = 100
	}
	bw := bufio.NewWriter(w)
	if title != "" {
		fmt.Fprintln(bw, title)
	}
	n := 0
	nameW := 0
	for _, s := range series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	if n == 0 {
		fmt.Fprintln(bw, "(no data)")
		return bw.Flush()
	}
	if width > n {
		width = n
	}
	for _, s := range series {
		max := 0.0
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
		fmt.Fprintf(bw, "%-*s |", nameW, s.Name)
		for col := 0; col < width; col++ {
			// Each column aggregates a bucket of intervals by max.
			lo := col * n / width
			hi := (col + 1) * n / width
			if hi == lo {
				hi = lo + 1
			}
			bucket := 0.0
			for i := lo; i < hi && i < len(s.Values); i++ {
				if s.Values[i] > bucket {
					bucket = s.Values[i]
				}
			}
			idx := 0
			if max > 0 {
				idx = int(bucket / max * float64(len(asciiLevels)-1))
			}
			bw.WriteByte(asciiLevels[idx])
		}
		fmt.Fprintf(bw, "| max=%.3g\n", max)
	}
	fmt.Fprintf(bw, "%-*s  0%s%d intervals\n", nameW, "", strings.Repeat(" ", maxInt(0, width-len(fmt.Sprint(n))-1)), n)
	return bw.Flush()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// phaseGlyphs label phases 0-61 in timeline bands.
const phaseGlyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// RenderPhaseTimeline draws per-interval phase membership as one glyph row:
// the at-a-glance view of where each phase lives in the run. assign maps
// interval index to phase ID (negative = unassigned, rendered '.'); the row
// is compressed to width columns by majority vote per bucket.
func RenderPhaseTimeline(w io.Writer, title string, assign []int, width int) error {
	bw := bufio.NewWriter(w)
	if title != "" {
		fmt.Fprintln(bw, title)
	}
	n := len(assign)
	if n == 0 {
		fmt.Fprintln(bw, "(no intervals)")
		return bw.Flush()
	}
	if width <= 0 || width > n {
		width = n
	}
	bw.WriteString("phases |")
	for col := 0; col < width; col++ {
		lo := col * n / width
		hi := (col + 1) * n / width
		if hi == lo {
			hi = lo + 1
		}
		// Majority phase in the bucket.
		votes := map[int]int{}
		best, bestN := -1, 0
		for i := lo; i < hi && i < n; i++ {
			votes[assign[i]]++
			if votes[assign[i]] > bestN {
				best, bestN = assign[i], votes[assign[i]]
			}
		}
		switch {
		case best < 0:
			bw.WriteByte('.')
		case best < len(phaseGlyphs):
			bw.WriteByte(phaseGlyphs[best])
		default:
			bw.WriteByte('?')
		}
	}
	fmt.Fprintf(bw, "| %d intervals\n", n)
	return bw.Flush()
}

package report

import (
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("TABLE X", "App", "Runtime (s)", "Phases")
	tb.AddRow("graph500", "188", "4")
	tb.AddRow("minife", "617", "5")
	out := tb.String()
	if !strings.Contains(out, "TABLE X") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: "Runtime (s)" starts at the same offset in header
	// and rows.
	hdr := strings.Index(lines[1], "Runtime")
	row := strings.Index(lines[3], "188")
	if hdr != row {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1")           // short: padded
	tb.AddRow("1", "2", "3") // long: truncated
	if tb.NumRows() != 2 {
		t.Fatal("rows")
	}
	out := tb.String()
	if strings.Contains(out, "3") {
		t.Fatalf("extra cell not dropped:\n%s", out)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var b strings.Builder
	err := WriteSeriesCSV(&b, []Series{
		{Name: "hb1", Values: []float64{1, 2, 3}},
		{Name: "hb2", Values: []float64{5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "interval,hb1,hb2\n0,1,5\n1,2,0\n2,3,0\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestWriteSeriesCSVEscapesCommas(t *testing.T) {
	var b strings.Builder
	if err := WriteSeriesCSV(&b, []Series{{Name: "a,b", Values: []float64{1}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "a;b") {
		t.Fatalf("comma not escaped: %q", b.String())
	}
}

func TestRenderASCIISeriesShape(t *testing.T) {
	vals := make([]float64, 50)
	for i := 25; i < 50; i++ {
		vals[i] = 1 // active only in the second half
	}
	var b strings.Builder
	err := RenderASCIISeries(&b, "Fig", []Series{{Name: "hb", Values: vals}}, 50)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "hb") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("series row missing:\n%s", out)
	}
	body := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
	firstHalf := body[:len(body)/2]
	secondHalf := body[len(body)/2:]
	if strings.Trim(firstHalf, " ") != "" {
		t.Fatalf("inactive region not blank: %q", firstHalf)
	}
	if !strings.Contains(secondHalf, "@") {
		t.Fatalf("active region not dark: %q", secondHalf)
	}
}

func TestRenderASCIISeriesEmpty(t *testing.T) {
	var b strings.Builder
	if err := RenderASCIISeries(&b, "Fig", nil, 80); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Fatalf("empty render: %q", b.String())
	}
}

func TestRenderASCIISeriesZeroSeries(t *testing.T) {
	var b strings.Builder
	err := RenderASCIISeries(&b, "", []Series{{Name: "z", Values: []float64{0, 0, 0}}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "max=0") {
		t.Fatalf("zero series: %q", b.String())
	}
}

func TestRenderPhaseTimeline(t *testing.T) {
	assign := make([]int, 30)
	for i := 10; i < 20; i++ {
		assign[i] = 1
	}
	for i := 20; i < 30; i++ {
		assign[i] = 2
	}
	var b strings.Builder
	if err := RenderPhaseTimeline(&b, "timeline", assign, 30); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "0000000000111111111122222222") {
		t.Fatalf("timeline bands wrong:\n%s", out)
	}
}

func TestRenderPhaseTimelineUnassignedAndEmpty(t *testing.T) {
	var b strings.Builder
	if err := RenderPhaseTimeline(&b, "", []int{-1, 0}, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), ".0") {
		t.Fatalf("unassigned glyph missing: %q", b.String())
	}
	b.Reset()
	if err := RenderPhaseTimeline(&b, "", nil, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no intervals") {
		t.Fatalf("empty render: %q", b.String())
	}
}

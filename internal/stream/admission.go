// admission.go is the overload-control stage of the live path: a bounded
// queue between a snapshot source (the directory tailer, a collector) and
// the analysis engine. Without it, a source faster than the analysis stage
// grows an unbounded backlog; with it, the operator chooses the failure
// mode explicitly:
//
//   - ShedBlock applies backpressure: Emit blocks until the engine drains a
//     slot. Nothing is ever lost; the source slows to the engine's pace.
//   - ShedDropOldest sheds load deterministically: the oldest pending dump
//     is discarded to admit the newest. A shed dump is never a silent loss —
//     its Seq simply goes missing from the accepted stream, so the robust
//     differencer records a GapMissing and repairs the span like any other
//     lost dump (shed-as-gap). DropOldest therefore requires a robust
//     downstream engine; a strict engine fails on the first gap.
//
// A stall watchdog bounds the other hazard of a live pipeline: an engine
// stage that stops returning (a wedged filesystem, a pathological refresh)
// would otherwise hang the source forever. When the in-flight Emit exceeds
// the stall budget the admission halts — producers get ErrStalled
// immediately instead of blocking — so the caller can save durable state
// and exit rather than hang. The checkpoint layer's WAL already holds every
// accepted dump, so a halt loses nothing that was admitted.
package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/incprof/incprof/internal/profile"
	"github.com/incprof/incprof/internal/obs"
)

// ErrStalled reports that the admission's stall watchdog fired: the
// downstream engine did not accept an emitted snapshot within the stall
// budget, and the admission has halted rather than hang its producers.
var ErrStalled = errors.New("stream: analysis stage stalled; admission halted")

// ShedPolicy selects what a full admission queue does with the next arrival.
type ShedPolicy int

const (
	// ShedBlock blocks the producer until a slot frees (backpressure).
	ShedBlock ShedPolicy = iota
	// ShedDropOldest discards the oldest pending snapshot to admit the
	// newest; the dropped Seq surfaces as an ordinary repaired gap in the
	// robust engine downstream.
	ShedDropOldest
)

// String names the policy for flags and reports.
func (p ShedPolicy) String() string {
	switch p {
	case ShedBlock:
		return "block"
	case ShedDropOldest:
		return "drop-oldest"
	default:
		return fmt.Sprintf("ShedPolicy(%d)", int(p))
	}
}

// AdmissionOptions configures an Admission.
type AdmissionOptions struct {
	// MaxPending bounds the queue; 0 means 64.
	MaxPending int
	// Policy is the full-queue behavior (default ShedBlock).
	Policy ShedPolicy
	// Stall is the watchdog budget for one downstream Emit; 0 disables
	// the watchdog.
	Stall time.Duration
	// OnShed, when non-nil, receives every snapshot discarded by
	// ShedDropOldest, in shed order. It is called without internal locks
	// held and must not call back into the Admission.
	OnShed func(*profile.Sample)
}

// Admission is the bounded queue stage. The producer side (Emit/Flush) may
// be used from one goroutine; a dedicated consumer goroutine drains the
// queue into the downstream sink serially, preserving arrival order of the
// admitted snapshots.
type Admission struct {
	opts AdmissionOptions
	down Sink[*profile.Sample]

	mu      sync.Mutex
	notFull *sync.Cond
	hasWork *sync.Cond
	queue   []*profile.Sample
	closed  bool
	halted  bool
	err     error
	done    chan struct{}
	haltCh  chan struct{}

	shed     int
	admitted int
	busyAt   time.Time // consumer entered down.Emit; zero when idle

	depth *obs.Gauge
}

// NewAdmission starts the consumer (and, when configured, the watchdog) and
// returns the producer-facing sink.
func NewAdmission(down Sink[*profile.Sample], opts AdmissionOptions) *Admission {
	if opts.MaxPending <= 0 {
		opts.MaxPending = 64
	}
	a := &Admission{
		opts:   opts,
		down:   down,
		done:   make(chan struct{}),
		haltCh: make(chan struct{}),
		depth:  obs.GV("stream.admission.queue"),
	}
	a.notFull = sync.NewCond(&a.mu)
	a.hasWork = sync.NewCond(&a.mu)
	go a.consume()
	if opts.Stall > 0 {
		go a.watch()
	}
	return a
}

// Emit admits one snapshot, applying the shed policy when the queue is
// full. It returns ErrStalled after a watchdog halt and the downstream
// error once the consumer has hit one.
func (a *Admission) Emit(s *profile.Sample) error {
	var shed *profile.Sample
	a.mu.Lock()
	for {
		switch {
		case a.halted:
			a.mu.Unlock()
			return ErrStalled
		case a.err != nil:
			err := a.err
			a.mu.Unlock()
			return err
		case a.closed:
			a.mu.Unlock()
			return fmt.Errorf("stream: admission closed")
		}
		if len(a.queue) < a.opts.MaxPending {
			break
		}
		if a.opts.Policy == ShedDropOldest {
			shed = a.queue[0]
			copy(a.queue, a.queue[1:])
			a.queue = a.queue[:len(a.queue)-1]
			a.shed++
			obs.CV("stream.admission.shed").Inc()
			break
		}
		a.notFull.Wait()
	}
	a.queue = append(a.queue, s)
	a.depth.SetMax(int64(len(a.queue)))
	a.hasWork.Signal()
	a.mu.Unlock()
	if shed != nil && a.opts.OnShed != nil {
		a.opts.OnShed(shed)
	}
	return nil
}

// Flush marks end of stream, waits for the queue to drain and the
// downstream Flush to complete, and reports the consumer's terminal error
// (or ErrStalled if the watchdog halted the pipeline before or during the
// drain).
func (a *Admission) Flush() error {
	a.mu.Lock()
	a.closed = true
	a.hasWork.Broadcast()
	a.mu.Unlock()
	// A wedged consumer never closes done; the watchdog's halt channel
	// bounds the wait so Flush cannot hang either.
	select {
	case <-a.done:
	case <-a.haltCh:
		return ErrStalled
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.halted {
		return ErrStalled
	}
	return a.err
}

// Shed returns how many snapshots the drop-oldest policy discarded.
func (a *Admission) Shed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shed
}

// Admitted returns how many snapshots the consumer has handed downstream.
func (a *Admission) Admitted() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted
}

// Halted reports whether the stall watchdog has fired.
func (a *Admission) Halted() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.halted
}

// consume drains the queue into the downstream sink serially.
func (a *Admission) consume() {
	defer close(a.done)
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.closed && !a.halted && a.err == nil {
			a.hasWork.Wait()
		}
		if a.halted || a.err != nil {
			a.mu.Unlock()
			return
		}
		if len(a.queue) == 0 {
			// Closed and drained: end of stream.
			a.mu.Unlock()
			if err := a.down.Flush(); err != nil {
				a.mu.Lock()
				a.err = err
				a.mu.Unlock()
			}
			return
		}
		s := a.queue[0]
		copy(a.queue, a.queue[1:])
		a.queue = a.queue[:len(a.queue)-1]
		a.depth.Set(int64(len(a.queue)))
		a.busyAt = time.Now()
		a.mu.Unlock()

		err := a.down.Emit(s)

		a.mu.Lock()
		a.busyAt = time.Time{}
		if err != nil {
			a.err = err
		} else {
			a.admitted++
		}
		a.notFull.Signal()
		a.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// watch is the stall watchdog: it halts the admission when one downstream
// Emit exceeds the stall budget, releasing any blocked producer with
// ErrStalled instead of hanging the pipeline.
func (a *Admission) watch() {
	tick := a.opts.Stall / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	for {
		time.Sleep(tick)
		a.mu.Lock()
		select {
		case <-a.done:
			a.mu.Unlock()
			return
		default:
		}
		if !a.busyAt.IsZero() && time.Since(a.busyAt) > a.opts.Stall {
			a.halted = true
			obs.CV("stream.admission.stalls").Inc()
			close(a.haltCh)
			a.notFull.Broadcast()
			a.hasWork.Broadcast()
			a.mu.Unlock()
			return
		}
		a.mu.Unlock()
	}
}

package stream_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/incprof/incprof/internal/profile"
	"github.com/incprof/incprof/internal/stream"
)

// recordingSink collects everything it is handed, optionally throttled, so
// tests can assert order, conservation, and flush sequencing.
type recordingSink struct {
	mu      sync.Mutex
	seqs    []int
	flushed bool
	delay   time.Duration
	block   chan struct{} // non-nil: Emit blocks until closed (stall tests)
}

func (r *recordingSink) Emit(s *profile.Sample) error {
	if r.block != nil {
		<-r.block
	}
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seqs = append(r.seqs, s.Seq)
	return nil
}

func (r *recordingSink) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushed = true
	return nil
}

func (r *recordingSink) snapshot() ([]int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.seqs...), r.flushed
}

func admSnap(seq int) *profile.Sample {
	return snap(seq, time.Duration(seq+1)*time.Second, 10*time.Millisecond,
		map[string][2]int64{"a": {int64(100 * (seq + 1)), int64(seq + 1)}})
}

// Block policy: nothing is lost, order is preserved, Flush drains and
// flushes downstream.
func TestAdmissionBlockDeliversEverythingInOrder(t *testing.T) {
	sink := &recordingSink{delay: 100 * time.Microsecond}
	adm := stream.NewAdmission(sink, stream.AdmissionOptions{MaxPending: 4, Policy: stream.ShedBlock})
	const n = 200
	for i := 0; i < n; i++ {
		if err := adm.Emit(admSnap(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := adm.Flush(); err != nil {
		t.Fatal(err)
	}
	seqs, flushed := sink.snapshot()
	if len(seqs) != n {
		t.Fatalf("delivered %d, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("order broken at %d: %d", i, s)
		}
	}
	if !flushed {
		t.Fatal("downstream Flush not called")
	}
	if adm.Shed() != 0 {
		t.Fatalf("block policy shed %d", adm.Shed())
	}
}

// Drop-oldest: the queue never exceeds its bound, every snapshot is either
// delivered or counted shed, shed callbacks fire in shed order, and the
// delivered stream stays in arrival order.
func TestAdmissionDropOldestConservesAndStaysOrdered(t *testing.T) {
	var shedMu sync.Mutex
	var shed []int
	sink := &recordingSink{delay: 300 * time.Microsecond}
	adm := stream.NewAdmission(sink, stream.AdmissionOptions{
		MaxPending: 8,
		Policy:     stream.ShedDropOldest,
		OnShed: func(s *profile.Sample) {
			shedMu.Lock()
			shed = append(shed, s.Seq)
			shedMu.Unlock()
		},
	})
	const n = 500
	for i := 0; i < n; i++ {
		if err := adm.Emit(admSnap(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := adm.Flush(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := sink.snapshot()
	shedMu.Lock()
	nshed := len(shed)
	shedOrdered := true
	for i := 1; i < len(shed); i++ {
		if shed[i] <= shed[i-1] {
			shedOrdered = false
		}
	}
	shedMu.Unlock()
	if len(seqs)+nshed != n {
		t.Fatalf("delivered %d + shed %d != %d", len(seqs), nshed, n)
	}
	if adm.Shed() != nshed || adm.Admitted() != len(seqs) {
		t.Fatalf("counters (%d, %d) disagree with observation (%d, %d)", adm.Shed(), adm.Admitted(), nshed, len(seqs))
	}
	if !shedOrdered {
		t.Fatal("shed callbacks out of order")
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("delivered stream out of order at %d: %v", i, seqs[i-1:i+1])
		}
	}
}

// The stall watchdog: a consumer wedged inside Emit halts the admission —
// producers get ErrStalled instead of blocking forever, and Flush returns
// instead of hanging.
func TestAdmissionStallWatchdogHaltsInsteadOfHanging(t *testing.T) {
	sink := &recordingSink{block: make(chan struct{})}
	defer close(sink.block)
	adm := stream.NewAdmission(sink, stream.AdmissionOptions{
		MaxPending: 2,
		Policy:     stream.ShedBlock,
		Stall:      50 * time.Millisecond,
	})
	// The first emit wedges the consumer; the second fits in the queue
	// whether or not the consumer has dequeued yet.
	for i := 0; i < 2; i++ {
		if err := adm.Emit(admSnap(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Keep emitting: the queue fills and the next Emit blocks on the
	// wedged consumer until the watchdog fires, then must return
	// ErrStalled promptly.
	errCh := make(chan error, 1)
	go func() {
		for i := 2; ; i++ {
			if err := adm.Emit(admSnap(i)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	select {
	case err := <-errCh:
		if !errors.Is(err, stream.ErrStalled) {
			t.Fatalf("blocked Emit returned %v, want ErrStalled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Emit hung past the watchdog")
	}
	if !adm.Halted() {
		t.Fatal("watchdog did not mark the admission halted")
	}
	// Flush must not hang on the wedged consumer either.
	done := make(chan error, 1)
	go func() { done <- adm.Flush() }()
	select {
	case err := <-done:
		if !errors.Is(err, stream.ErrStalled) {
			t.Fatalf("Flush returned %v, want ErrStalled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush hung on a wedged consumer")
	}
}

// Emit after Flush is an error, not a silent drop.
func TestAdmissionEmitAfterFlushErrors(t *testing.T) {
	sink := &recordingSink{}
	adm := stream.NewAdmission(sink, stream.AdmissionOptions{MaxPending: 2})
	if err := adm.Emit(admSnap(0)); err != nil {
		t.Fatal(err)
	}
	if err := adm.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := adm.Emit(admSnap(1)); err == nil {
		t.Fatal("Emit after Flush did not error")
	}
}

// alloc_test.go asserts the allocation discipline of the per-interval live
// path: between refreshes, each arriving interval costs one RowInto into the
// engine's reused row buffer plus one mini-batch update — and in steady state
// (feature space no longer growing, centroids already padded) that pair must
// not allocate at all. The obs layer holds the same bar for its disabled
// hot-path calls; together they keep the per-interval cost O(k·dims) work
// with zero allocator churn.
package stream

import (
	"testing"
	"time"

	"github.com/incprof/incprof/internal/interval"
)

func TestLiveRowUpdatePathAllocatesNothing(t *testing.T) {
	b := interval.NewMatrixBuilder(interval.FeatureOptions{})
	for i := 0; i < 8; i++ {
		b.Add(&interval.Profile{
			Index: i,
			Self: map[string]time.Duration{
				"init":  time.Duration(10+i) * time.Millisecond,
				"solve": time.Duration(20+i) * time.Millisecond,
				"io":    time.Duration(5) * time.Millisecond,
			},
		})
	}
	mb := newMiniBatch([][]float64{{0.01, 0.005, 0.02}, {0.015, 0.004, 0.025}}, []int{4, 4})
	var rowBuf []float64
	// Warm the buffer and the mini-batch centroid padding once.
	rowBuf = b.RowInto(0, rowBuf)
	mb.update(rowBuf)
	row := 0
	if n := testing.AllocsPerRun(200, func() {
		rowBuf = b.RowInto(row, rowBuf)
		mb.update(rowBuf)
		row = (row + 1) % b.NumRows()
	}); n != 0 {
		t.Fatalf("steady-state live row path allocates %.1f per interval, want 0", n)
	}
}

// TestLivePackedRowUpdatePathAllocatesNothing holds the same bar for the
// packed path the engine actually runs since the CSR rework: SparseRow into
// reused index/value buffers plus a packed mini-batch update, zero
// allocations per interval in steady state.
func TestLivePackedRowUpdatePathAllocatesNothing(t *testing.T) {
	b := interval.NewMatrixBuilder(interval.FeatureOptions{})
	for i := 0; i < 8; i++ {
		b.Add(&interval.Profile{
			Index: i,
			Self: map[string]time.Duration{
				"init":  time.Duration(10+i) * time.Millisecond,
				"solve": time.Duration(20+i) * time.Millisecond,
				"io":    time.Duration(5) * time.Millisecond,
			},
		})
	}
	mb := newMiniBatch([][]float64{{0.01, 0.005, 0.02}, {0.015, 0.004, 0.025}}, []int{4, 4})
	var idxBuf []int32
	var valBuf []float64
	// Warm the buffers and the mini-batch centroid padding once.
	idxBuf, valBuf = b.SparseRow(0, idxBuf, valBuf)
	mb.updatePacked(valBuf, idxBuf, b.Dims())
	row := 0
	if n := testing.AllocsPerRun(200, func() {
		idxBuf, valBuf = b.SparseRow(row, idxBuf, valBuf)
		mb.updatePacked(valBuf, idxBuf, b.Dims())
		row = (row + 1) % b.NumRows()
	}); n != 0 {
		t.Fatalf("steady-state packed live row path allocates %.1f per interval, want 0", n)
	}
}

// clusterer.go holds the incremental clustering state of the engine: a
// mini-batch k-means model nudged by every arriving interval, which in turn
// warm-starts the periodic full cluster.Sweep refreshes.
package stream

import (
	"github.com/incprof/incprof/internal/cluster"
	"github.com/incprof/incprof/internal/xmath"
)

// miniBatch is a Sculley-style mini-batch (batch size 1) k-means model: each
// arriving point joins its nearest centroid, which moves toward it with a
// per-centroid learning rate 1/count. Between full refreshes it tracks the
// drift of the run cheaply — O(k·dims) per interval — and its centroids seed
// the warm-start candidate of the next refresh. It never replaces the full
// sweep: refreshes re-cluster all rows and reseed it.
type miniBatch struct {
	centroids [][]float64
	counts    []int64
}

// newMiniBatch clones a refresh's selected model into a mini-batch state;
// sizes (the per-cluster member counts) seed the learning-rate counters so a
// large established cluster is not yanked around by its next few members.
func newMiniBatch(centroids [][]float64, sizes []int) *miniBatch {
	m := &miniBatch{
		centroids: cluster.CloneCentroids(centroids),
		counts:    make([]int64, len(centroids)),
	}
	for i := range sizes {
		if i < len(m.counts) {
			m.counts[i] = int64(sizes[i])
		}
	}
	return m
}

// update assigns v to its nearest centroid, drifts that centroid toward v,
// and returns the assignment. The feature space may have grown since the
// centroids were computed; missing trailing dimensions read as zero and the
// centroid is padded on first touch.
func (m *miniBatch) update(v []float64) int {
	best, bestD := 0, xmath.SquaredEuclideanPadded(v, m.centroids[0])
	for c := 1; c < len(m.centroids); c++ {
		if d := xmath.SquaredEuclideanPadded(v, m.centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	m.counts[best]++
	eta := 1 / float64(m.counts[best])
	c := m.centroids[best]
	for len(c) < len(v) {
		c = append(c, 0)
	}
	for i := range v {
		c[i] += eta * (v[i] - c[i])
	}
	m.centroids[best] = c
	return best
}

// updatePacked is update on a packed sparse row (vals at sorted column
// indices cols, logical length dim) — the engine's zero-densify per-interval
// path. The nearest-centroid scan runs on the packed padded kernel and the
// drift walks every logical dimension (a zero cell still pulls the centroid
// coordinate toward zero, exactly as the dense loop does), so the model
// state after each call is bit-identical to update on the scattered row.
func (m *miniBatch) updatePacked(vals []float64, cols []int32, dim int) int {
	best, bestD := 0, xmath.SquaredEuclideanPackedPadded(vals, cols, dim, m.centroids[0])
	for c := 1; c < len(m.centroids); c++ {
		if d := xmath.SquaredEuclideanPackedPadded(vals, cols, dim, m.centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	m.counts[best]++
	eta := 1 / float64(m.counts[best])
	c := m.centroids[best]
	for len(c) < dim {
		c = append(c, 0)
	}
	t := 0
	for d := 0; d < dim; d++ {
		var v float64
		if t < len(cols) && int(cols[t]) == d {
			v = vals[t]
			t++
		}
		c[d] += eta * (v - c[d])
	}
	m.centroids[best] = c
	return best
}

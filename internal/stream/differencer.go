// differencer.go is the ingest stage of the streaming engine: cumulative
// profile samples in, per-interval profiles out, retaining only the previous
// kept snapshot (plus an optional bounded reorder window) instead of the
// whole dump list — O(1) memory in the run length where the batch
// differencers are O(n).
package stream

import (
	"container/heap"
	"fmt"

	"github.com/incprof/incprof/internal/profile"
	"github.com/incprof/incprof/internal/interval"
	"github.com/incprof/incprof/internal/obs"
)

// DifferencerOptions configures a Differencer.
type DifferencerOptions struct {
	// Robust selects the fault-tolerant differencing kernel
	// (interval.RobustStream, sharing DifferenceRobust's repair policies);
	// false selects the strict kernel (interval.StrictPair, sharing
	// Difference's validation), where any discontinuity is an error.
	Robust bool
	// Policy is the robust-mode repair policy for missing spans (default
	// GapSplit). Ignored in strict mode.
	Policy interval.GapPolicy
	// Reorder, when > 0, buffers up to that many snapshots and releases
	// them in ascending Seq order, absorbing transport-level reordering
	// (a live feed delivering dumps out of order) before the differencing
	// kernel sees it. Memory grows by the window size only. 0 disables the
	// window: snapshots difference in arrival order, exactly like the batch
	// paths.
	Reorder int
	// OnGap, when non-nil, receives each Gap as the stream repairs it —
	// the live path's discontinuity feed. Gaps are also accumulated and
	// returned by Gaps regardless.
	OnGap func(interval.Gap)
}

// Differencer is the snapshot→profile stage. It is not safe for concurrent
// use; a stream is a single logical sequence.
type Differencer struct {
	opts DifferencerOptions
	down Sink[interval.Profile]

	// Strict-mode state: the previous snapshot and the count of profiles
	// emitted (their Index values).
	prev *profile.Sample
	n    int

	// Robust-mode state.
	rs   *interval.RobustStream
	gaps []interval.Gap

	// Reorder window, a min-heap by Seq.
	window snapHeap
	depth  *obs.Gauge

	// released is the highest Seq already handed to the kernel, -1 before
	// the first. A snapshot arriving below it is beyond the bounded
	// window's reach: robust mode will discard it as a GapLate; lateDrops
	// counts those discards so they are never silent.
	released  int
	lateDrops int
}

// NewDifferencer returns a differencer stage; bind its downstream profile
// sink with Start before the first Emit.
func NewDifferencer(opts DifferencerOptions) *Differencer {
	d := &Differencer{opts: opts, released: -1}
	if opts.Reorder > 0 {
		d.depth = obs.G("stream.differencer.reorder.depth")
	}
	if opts.Robust {
		d.rs = interval.NewRobustStream(opts.Policy)
	}
	return d
}

// Start implements Stage.
func (d *Differencer) Start(down Sink[interval.Profile]) { d.down = down }

// Emit ingests the next cumulative snapshot, forwarding every profile it
// completes downstream. In robust mode one snapshot may complete several
// profiles (a split gap repair) or none (a duplicate); in strict mode any
// discontinuity is an error, matching interval.Difference.
func (d *Differencer) Emit(s *profile.Sample) error {
	if d.opts.Reorder <= 0 {
		return d.ingest(s)
	}
	// A nil snapshot has no Seq to order by; robust mode drops it exactly
	// as the kernel would, strict mode rejects it below.
	if s == nil {
		return d.ingest(s)
	}
	heap.Push(&d.window, s)
	d.depth.SetMax(int64(d.window.Len()))
	if d.window.Len() <= d.opts.Reorder {
		return nil
	}
	return d.ingest(heap.Pop(&d.window).(*profile.Sample))
}

// ingest feeds one snapshot to the differencing kernel.
func (d *Differencer) ingest(s *profile.Sample) error {
	if s != nil && s.Seq > d.released {
		d.released = s.Seq
	}
	if d.rs != nil {
		profiles, gaps := d.rs.Push(s)
		for _, g := range gaps {
			if g.Kind == interval.GapLate {
				// The dump is discarded: it arrived after the bounded
				// window (or the unbuffered stream) had already released
				// past its Seq. Count it so the loss is visible in the
				// ops surface, not just buried in the gap list.
				d.lateDrops++
				obs.C("stream.differencer.late_dropped").Inc()
			}
			d.gaps = append(d.gaps, g)
			if obs.Enabled() {
				obs.C("interval.gaps." + g.Kind.String()).Inc()
			}
			if d.opts.OnGap != nil {
				d.opts.OnGap(g)
			}
		}
		for i := range profiles {
			if profiles[i].Repaired && obs.Enabled() {
				obs.C("interval.repaired." + d.opts.Policy.String()).Inc()
			}
			obs.C("interval.profiles").Inc()
			if err := d.down.Emit(profiles[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if s == nil {
		return fmt.Errorf("stream: nil snapshot")
	}
	if d.prev != nil && s.Seq < d.prev.Seq {
		// Strict mode cannot absorb a dump the bounded reorder window
		// released past; fail with the real cause rather than the
		// timestamp-regression error StrictPair would report.
		d.lateDrops++
		obs.C("stream.differencer.late_dropped").Inc()
		return fmt.Errorf("stream: snapshot seq %d arrived after the reorder window (size %d) released seq %d; widen -reorder or run robust",
			s.Seq, d.opts.Reorder, d.prev.Seq)
	}
	p, err := interval.StrictPair(d.prev, s)
	if err != nil {
		return err
	}
	p.Index = d.n
	d.n++
	d.prev = s
	obs.C("interval.profiles").Inc()
	return d.down.Emit(p)
}

// Flush drains the reorder window in Seq order through the kernel, then
// reports the robust stream's terminal validation error (all pushed
// snapshots unusable), then flushes downstream.
func (d *Differencer) Flush() error {
	for d.window.Len() > 0 {
		if err := d.ingest(heap.Pop(&d.window).(*profile.Sample)); err != nil {
			return err
		}
	}
	if d.rs != nil {
		if err := d.rs.Err(); err != nil {
			return err
		}
	}
	return d.down.Flush()
}

// Profiles returns the number of profiles emitted so far.
func (d *Differencer) Profiles() int {
	if d.rs != nil {
		return d.rs.Profiles()
	}
	return d.n
}

// Gaps returns every gap repaired so far, in stream order — the robust
// batch path's Result.Gaps, grown incrementally. Nil in strict mode.
func (d *Differencer) Gaps() []interval.Gap { return d.gaps }

// LateDrops counts dumps discarded because they arrived with a Seq the
// stream had already released past — the bounded reorder window's loss
// surface. Robust mode records each as a GapLate gap too; strict mode fails
// on the first.
func (d *Differencer) LateDrops() int { return d.lateDrops }

// snapHeap orders buffered snapshots by Seq ascending; ties keep arrival
// order stable by comparing insertion stamps.
type snapHeap struct {
	items  []snapEntry
	serial int
}

type snapEntry struct {
	s      *profile.Sample
	serial int
}

func (h *snapHeap) Len() int { return len(h.items) }
func (h *snapHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.s.Seq != b.s.Seq {
		return a.s.Seq < b.s.Seq
	}
	return a.serial < b.serial
}
func (h *snapHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *snapHeap) Push(x any) {
	h.items = append(h.items, snapEntry{s: x.(*profile.Sample), serial: h.serial})
	h.serial++
}
func (h *snapHeap) Pop() any {
	n := len(h.items) - 1
	s := h.items[n].s
	h.items[n] = snapEntry{}
	h.items = h.items[:n]
	return s
}

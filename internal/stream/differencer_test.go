package stream_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/incprof/incprof/internal/profile"
	"github.com/incprof/incprof/internal/interval"
	"github.com/incprof/incprof/internal/stream"
)

// snap builds a cumulative snapshot; funcs maps name -> {samples, calls}.
// Funcs are name-sorted: Snapshot.Func looks records up by binary search,
// so the invariant every real producer maintains must hold here too.
func snap(seq int, ts time.Duration, period time.Duration, funcs map[string][2]int64) *profile.Sample {
	s := &profile.Sample{Seq: seq, Timestamp: ts, SamplePeriod: period}
	for name, v := range funcs {
		s.Funcs = append(s.Funcs, profile.FuncRecord{
			Name:     name,
			Samples:  v[0],
			SelfTime: time.Duration(v[0]) * period,
			Calls:    v[1],
		})
	}
	sort.Slice(s.Funcs, func(i, j int) bool { return s.Funcs[i].Name < s.Funcs[j].Name })
	return s
}

// runDifferencer feeds snaps through a Differencer stage and returns the
// collected profiles.
func runDifferencer(t *testing.T, opts stream.DifferencerOptions, snaps []*profile.Sample) ([]interval.Profile, []interval.Gap, error) {
	t.Helper()
	d := stream.NewDifferencer(opts)
	var got collector[interval.Profile]
	head := stream.Pipe[*profile.Sample, interval.Profile](d, &got)
	err := (stream.SliceSource[*profile.Sample]{Items: snaps}).Run(head)
	return got.items, d.Gaps(), err
}

func cleanSnaps() []*profile.Sample {
	period := 10 * time.Millisecond
	return []*profile.Sample{
		snap(0, time.Second, period, map[string][2]int64{"a": {50, 5}}),
		snap(1, 2*time.Second, period, map[string][2]int64{"a": {120, 12}, "b": {10, 1}}),
		snap(2, 3*time.Second, period, map[string][2]int64{"a": {130, 13}, "b": {40, 2}}),
		snap(3, 4*time.Second, period, map[string][2]int64{"a": {200, 20}, "b": {45, 3}}),
	}
}

func TestStrictDifferencerMatchesBatch(t *testing.T) {
	snaps := cleanSnaps()
	want, err := interval.Difference(snaps)
	if err != nil {
		t.Fatal(err)
	}
	got, gaps, err := runDifferencer(t, stream.DifferencerOptions{}, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 0 {
		t.Fatalf("strict mode produced gaps: %+v", gaps)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming profiles differ from batch:\n got %+v\nwant %+v", got, want)
	}
}

func TestStrictDifferencerErrorMatchesBatch(t *testing.T) {
	period := 10 * time.Millisecond
	snaps := []*profile.Sample{
		snap(0, time.Second, period, map[string][2]int64{"a": {50, 5}}),
		snap(1, 2*time.Second, period, map[string][2]int64{"a": {40, 6}}), // counter regression
	}
	_, wantErr := interval.Difference(snaps)
	if wantErr == nil {
		t.Fatal("batch accepted a counter regression")
	}
	_, _, gotErr := runDifferencer(t, stream.DifferencerOptions{}, snaps)
	if gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("streaming error = %v, want %v", gotErr, wantErr)
	}
}

func TestStrictDifferencerRejectsNil(t *testing.T) {
	_, _, err := runDifferencer(t, stream.DifferencerOptions{}, []*profile.Sample{nil})
	if err == nil {
		t.Fatal("nil snapshot accepted in strict mode")
	}
}

// faultySnaps builds a deterministic pseudo-random snapshot stream with
// every discontinuity class the robust path repairs: nils, duplicates, late
// arrivals, missing seqs, counter/clock restarts, and period changes.
func faultySnaps(seed int64, n int) []*profile.Sample {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"alpha", "beta", "gamma", "delta"}
	period := 10 * time.Millisecond
	cum := map[string][2]int64{}
	var out []*profile.Sample
	seq := 0
	ts := time.Duration(0)
	for len(out) < n {
		switch r := rng.Float64(); {
		case r < 0.06:
			out = append(out, nil)
			continue
		case r < 0.12 && len(out) > 0 && out[len(out)-1] != nil:
			// Duplicate of the previous dump.
			dup := *out[len(out)-1]
			out = append(out, &dup)
			continue
		case r < 0.18 && seq > 2:
			// Late arrival: an old seq resurfaces.
			late := snap(seq-2, ts, period, cloneCounters(cum))
			out = append(out, late)
			continue
		case r < 0.24 && seq > 0:
			// Collector restart: counters and clock reset.
			cum = map[string][2]int64{}
			ts = time.Duration(rng.Intn(500)) * time.Millisecond
		case r < 0.30 && seq > 0:
			// Missing span: skip 1-3 seqs.
			seq += 1 + rng.Intn(3)
		case r < 0.34 && seq > 0:
			// Sample period change mid-stream.
			period += time.Millisecond
		}
		// Advance counters monotonically.
		for _, fn := range names {
			if rng.Float64() < 0.7 {
				c := cum[fn]
				c[0] += int64(rng.Intn(40))
				c[1] += int64(rng.Intn(5))
				cum[fn] = c
			}
		}
		ts += time.Duration(500+rng.Intn(1000)) * time.Millisecond
		out = append(out, snap(seq, ts, period, cloneCounters(cum)))
		seq++
	}
	return out
}

func cloneCounters(m map[string][2]int64) map[string][2]int64 {
	out := make(map[string][2]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// The core equivalence property of the tentpole: a RobustStream-backed
// differencer fed one snapshot at a time produces exactly the profiles and
// gaps DifferenceRobust assembles from the full list, for every policy and
// any fault pattern.
func TestRobustDifferencerMatchesBatchOnFaultyStreams(t *testing.T) {
	for _, policy := range []interval.GapPolicy{interval.GapSplit, interval.GapDrop, interval.GapScale} {
		for seed := int64(1); seed <= 25; seed++ {
			snaps := faultySnaps(seed, 40)
			want, err := interval.DifferenceRobust(snaps, interval.RobustOptions{Policy: policy})
			if err != nil {
				t.Fatalf("policy %v seed %d: batch: %v", policy, seed, err)
			}
			got, gaps, err := runDifferencer(t, stream.DifferencerOptions{Robust: true, Policy: policy}, snaps)
			if err != nil {
				t.Fatalf("policy %v seed %d: stream: %v", policy, seed, err)
			}
			if len(got) == 0 {
				got = nil // DeepEqual: batch uses nil for empty
			}
			if !reflect.DeepEqual(got, want.Profiles) {
				t.Fatalf("policy %v seed %d: profiles diverge\n got %+v\nwant %+v", policy, seed, got, want.Profiles)
			}
			if !reflect.DeepEqual(gaps, want.Gaps) {
				t.Fatalf("policy %v seed %d: gaps diverge\n got %+v\nwant %+v", policy, seed, gaps, want.Gaps)
			}
		}
	}
}

func TestRobustDifferencerAllUnusableErrorsLikeBatch(t *testing.T) {
	snaps := []*profile.Sample{nil, nil}
	wantRes, wantErr := interval.DifferenceRobust(snaps, interval.RobustOptions{})
	if wantErr == nil {
		t.Fatalf("batch accepted all-nil stream: %+v", wantRes)
	}
	_, _, gotErr := runDifferencer(t, stream.DifferencerOptions{Robust: true}, snaps)
	if gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("streaming error = %v, want %v", gotErr, wantErr)
	}
}

// The reorder window undoes transport-level shuffling: snapshots delivered
// out of order within the window difference exactly like the in-order
// stream, with no Late/Missing gaps fabricated.
func TestReorderWindowRepairsShuffledDelivery(t *testing.T) {
	period := 10 * time.Millisecond
	var ordered []*profile.Sample
	cum := int64(0)
	for i := 0; i < 20; i++ {
		cum += int64(10 + i)
		ordered = append(ordered, snap(i, time.Duration(i+1)*time.Second, period, map[string][2]int64{"a": {cum, cum / 10}}))
	}
	want, err := interval.DifferenceRobust(ordered, interval.RobustOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Shuffle within a bounded horizon: swap adjacent pairs, displacing
	// every snapshot by at most 1.
	shuffled := append([]*profile.Sample(nil), ordered...)
	for i := 0; i+1 < len(shuffled); i += 2 {
		shuffled[i], shuffled[i+1] = shuffled[i+1], shuffled[i]
	}

	// Without the window, the robust path sees late arrivals and drops them.
	_, gaps, err := runDifferencer(t, stream.DifferencerOptions{Robust: true}, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) == 0 {
		t.Fatal("shuffled stream without reorder window produced no gaps (test premise broken)")
	}

	// With it, the stream is indistinguishable from the ordered one.
	got, gaps, err := runDifferencer(t, stream.DifferencerOptions{Robust: true, Reorder: 2}, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 0 {
		t.Fatalf("reorder window left gaps: %+v", gaps)
	}
	if !reflect.DeepEqual(got, want.Profiles) {
		t.Fatalf("reordered profiles diverge from in-order batch")
	}
}

func TestReorderWindowWorksInStrictMode(t *testing.T) {
	snaps := cleanSnaps()
	want, err := interval.Difference(snaps)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []*profile.Sample{snaps[1], snaps[0], snaps[3], snaps[2]}
	got, _, err := runDifferencer(t, stream.DifferencerOptions{Reorder: 3}, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("strict reordered profiles diverge from batch")
	}
}

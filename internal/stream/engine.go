// engine.go assembles the stages into the incremental analysis engine. One
// engine serves both execution modes:
//
//   - Batch: feed every snapshot, Flush once, read Result. The terminal
//     refresh runs the identical phase.DetectMatrix call the batch
//     phase.Detect performs over the identical matrix and profiles, so the
//     result is byte-for-byte the batch analysis for a fixed seed.
//   - Live: feed snapshots as they arrive; every RefreshEvery intervals the
//     engine re-clusters everything seen so far (warm-started from its
//     mini-batch model) and re-selects instrumentation sites incrementally,
//     surfacing labels, gaps, and refreshed detections through callbacks.
package stream

import (
	"fmt"

	"github.com/incprof/incprof/internal/cluster"
	"github.com/incprof/incprof/internal/profile"
	"github.com/incprof/incprof/internal/interval"
	"github.com/incprof/incprof/internal/obs"
	"github.com/incprof/incprof/internal/online"
	"github.com/incprof/incprof/internal/phase"
)

// Options configures an Engine.
type Options struct {
	// Robust selects gap-aware differencing (interval.RobustStream); false
	// selects strict differencing, where any discontinuity fails the
	// stream.
	Robust bool
	// Gap is the robust-mode repair policy for missing dumps (default
	// GapSplit).
	Gap interval.GapPolicy
	// Reorder is the differencer's bounded reorder window (see
	// DifferencerOptions.Reorder); 0, the batch setting, disables it.
	Reorder int
	// Phase configures detection exactly as in the batch path; zero values
	// take the paper defaults. Cluster.Seed fixes the model; the engine's
	// final result is byte-identical to phase.Detect with these options
	// over the same profiles.
	Phase phase.Options
	// RefreshEvery re-runs full detection every that many intervals,
	// warm-started from the engine's mini-batch model. 0 (the batch
	// setting) defers all clustering to Flush.
	RefreshEvery int
	// Online tunes the live label tracker; the tracker exists only when
	// OnLabel is set. Its Exclude defaults to Phase.Features.Exclude.
	Online online.Options
	// OnLabel receives a live phase label per interval as it arrives.
	OnLabel func(online.Event)
	// OnGap receives each repaired stream discontinuity as it happens.
	OnGap func(interval.Gap)
	// OnRefresh receives every refresh result, including the final one.
	OnRefresh func(Refresh)
	// Span, when non-nil, parents the engine's tracing spans.
	Span *obs.Span
}

// Refresh summarizes one re-clustering pass.
type Refresh struct {
	// Index numbers refreshes from 0; Final marks the Flush-time pass.
	Index int
	Final bool
	// Intervals is the number of profiles the pass covered.
	Intervals int
	// K is the selected number of phases.
	K int
	// WarmAccepted reports that the warm-started candidate beat the
	// seeded sweep at its k and entered model selection.
	WarmAccepted bool
	// SitesReused and SitesRecomputed count phases whose Algorithm 1
	// selection was served from the incremental cache vs rerun.
	SitesReused, SitesRecomputed int
	// Detection is the full result of this pass.
	Detection *phase.Detection
}

// Engine is the streaming analysis pipeline. It implements the
// Sink[*profile.Sample] shape, so a collector (or any snapshot source) can
// feed it directly. It is not safe for concurrent use.
type Engine struct {
	opts  Options
	popts phase.Options // Phase with defaults resolved

	head Sink[*profile.Sample]
	diff *Differencer

	builder  *interval.MatrixBuilder
	profiles []interval.Profile
	tracker  *online.Tracker
	mb       *miniBatch
	sites    *siteCache

	// Reused per-interval packed-row scratch for mb.updatePacked: the
	// builder's SparseRow fills these without densifying, and steady state
	// (feature space no longer growing) reallocates neither.
	idxBuf []int32
	valBuf []float64

	snaps        int
	sinceRefresh int
	refreshes    int
	last         *phase.Detection
	span         *obs.Span
	flushed      bool
}

// New builds an engine. The differencer, feature builder, tracker, and
// clustering state are wired as a stage graph behind the returned engine's
// Emit.
func New(opts Options) *Engine {
	e := &Engine{
		opts:    opts,
		popts:   opts.Phase.WithDefaults(),
		builder: interval.NewMatrixBuilder(opts.Phase.Features),
		sites:   newSiteCache(),
		span:    obs.Under(opts.Span, "stream.engine", 0),
	}
	e.span.SetBool("robust", opts.Robust).SetInt("refresh_every", int64(opts.RefreshEvery))
	if opts.OnLabel != nil {
		oopts := opts.Online
		if oopts.Exclude == nil {
			oopts.Exclude = opts.Phase.Features.Exclude
		}
		oopts.OnEvent = opts.OnLabel
		e.tracker = online.New(oopts)
	}
	e.diff = NewDifferencer(DifferencerOptions{
		Robust:  opts.Robust,
		Policy:  opts.Gap,
		Reorder: opts.Reorder,
		OnGap:   opts.OnGap,
	})
	e.head = Instrument("snapshots", Pipe[*profile.Sample, interval.Profile](
		e.diff,
		Instrument("intervals", SinkFunc[interval.Profile]{OnEmit: e.consume}),
	))
	return e
}

// Emit ingests the next cumulative snapshot.
func (e *Engine) Emit(s *profile.Sample) error {
	e.snaps++
	return e.head.Emit(s)
}

// consume is the terminal stage: every completed interval profile lands
// here, updating the matrix, the live tracker, and the mini-batch model,
// and triggering periodic refreshes.
func (e *Engine) consume(p interval.Profile) error {
	e.profiles = append(e.profiles, p)
	e.builder.Add(&p)
	if e.tracker != nil {
		if err := e.tracker.Emit(p); err != nil {
			return err
		}
	}
	if e.mb != nil {
		// SparseRow reuses idxBuf/valBuf: once the feature space stops
		// growing, the per-interval live path stops allocating (asserted in
		// alloc_test.go), and the row is never densified.
		e.idxBuf, e.valBuf = e.builder.SparseRow(len(e.profiles)-1, e.idxBuf, e.valBuf)
		e.mb.updatePacked(e.valBuf, e.idxBuf, e.builder.Dims())
	}
	if e.opts.RefreshEvery > 0 {
		e.sinceRefresh++
		if e.sinceRefresh >= e.opts.RefreshEvery {
			return e.refresh(false)
		}
	}
	return nil
}

// Flush ends the stream: the reorder window drains, the terminal refresh
// runs (the batch-equivalent detection), and the engine span closes. Flush
// is idempotent; Emit must not be called after it.
func (e *Engine) Flush() error {
	if e.flushed {
		return nil
	}
	e.flushed = true
	defer e.span.End()
	if err := e.head.Flush(); err != nil {
		return err
	}
	if e.opts.Robust && e.snaps == 0 {
		return fmt.Errorf("interval: no snapshots")
	}
	if err := e.refresh(true); err != nil {
		return err
	}
	if e.tracker != nil {
		return e.tracker.Flush()
	}
	return nil
}

// refresh re-runs detection over everything seen so far. The final pass is
// exactly the batch code path — phase.DetectMatrix with the engine's options
// over the incrementally-built matrix, no warm candidate, no site cache — so
// its output is byte-identical to phase.Detect over the same profiles.
// Intermediate passes keep the same pipeline but may accept a warm-started
// candidate when it strictly beats the seeded sweep at its k, and serve
// unchanged phases' site selections from the incremental cache.
func (e *Engine) refresh(final bool) error {
	// The refresh matrix is built in flat CSR form: every consumer below —
	// the batch-equivalent DetectMatrix, the incremental sweep, the warm
	// start, and silhouette selection — runs on it without densifying.
	m := e.builder.CSRMatrix()
	if !final && (len(e.profiles) == 0 || m.Dims() == 0) {
		// Too early to cluster (no rows, or no function active yet): a live
		// stream just waits for the next refresh; only the terminal pass
		// turns this into the batch path's error.
		obs.C("stream.refresh.skipped").Inc()
		e.sinceRefresh = 0
		return nil
	}

	var det *phase.Detection
	var err error
	var stats refreshStats
	if final {
		popts := e.popts
		popts.Span = e.span
		det, err = phase.DetectMatrix(e.profiles, m, popts)
	} else {
		det, stats, err = e.refreshIncremental(m)
	}
	if err != nil {
		return err
	}

	e.last = det
	if det.Options.Algorithm == phase.KMeansAlg {
		// Reseed the incremental state from the fresh model, in phase-ID
		// order so live labels line up with reported phase numbers.
		cents := make([][]float64, len(det.Phases))
		sizes := make([]int, len(det.Phases))
		for i := range det.Phases {
			cents[i] = det.Phases[i].Centroid
			sizes[i] = len(det.Phases[i].Intervals)
		}
		e.mb = newMiniBatch(cents, sizes)
		if e.tracker != nil && e.popts.Features.Kind == interval.SampledSelf {
			// The tracker's feature space is sampled self seconds; only the
			// SampledSelf matrix shares it, so other feature kinds leave the
			// tracker's own drifting model in place.
			e.tracker.Reseed(m.FuncNames, cents, sizes)
		}
	}

	obs.C("stream.refreshes").Inc()
	idx := e.refreshes
	e.refreshes++
	e.sinceRefresh = 0
	if e.opts.OnRefresh != nil {
		e.opts.OnRefresh(Refresh{
			Index:           idx,
			Final:           final,
			Intervals:       len(e.profiles),
			K:               det.K,
			WarmAccepted:    stats.warmAccepted,
			SitesReused:     stats.sitesReused,
			SitesRecomputed: stats.sitesRecomputed,
			Detection:       det,
		})
	}
	return nil
}

// refreshIncremental is the intermediate-refresh detection: a full seeded
// sweep plus an optional warm-started challenger, then the batch selection,
// phase assembly, and cached Algorithm 1.
func (e *Engine) refreshIncremental(m interval.Matrix) (*phase.Detection, refreshStats, error) {
	var stats refreshStats
	rsp := e.span.ChildKey("stream.refresh", uint64(e.refreshes+1))
	defer rsp.End()
	rsp.SetInt("intervals", int64(len(e.profiles)))

	popts := e.popts
	popts.Span = rsp
	if popts.Algorithm != phase.KMeansAlg {
		// DBSCAN has no centroids to warm-start and no sweep to challenge;
		// intermediate refreshes simply rerun the batch detection.
		det, err := phase.DetectMatrix(e.profiles, m, popts)
		return det, stats, err
	}

	copts := popts.Cluster
	copts.Span = rsp
	results, err := cluster.SweepCSR(m.Sparse, popts.KMax, copts)
	if err != nil {
		return nil, stats, err
	}

	// Warm-started challenger: Lloyd from the mini-batch model's current
	// centroids. It replaces the seeded result at its k only when strictly
	// better, so a degenerate warm model can never worsen the sweep — and
	// the terminal refresh never runs one, keeping the final model equal to
	// the batch model.
	if e.mb != nil {
		k := len(e.mb.centroids)
		if k >= 1 && k <= len(results) && k <= m.NumRows() {
			warm, werr := cluster.WarmStartCSR(m.Sparse, e.mb.centroids, copts)
			if werr == nil && warm.WCSS < results[k-1].WCSS {
				results[k-1] = warm
				stats.warmAccepted = true
				obs.C("stream.warm.accepted").Inc()
			} else if werr == nil {
				obs.C("stream.warm.rejected").Inc()
			}
		}
	}

	det := &phase.Detection{Matrix: m, Profiles: e.profiles, Options: popts}
	det.WCSS = make([]float64, len(results))
	for i, r := range results {
		det.WCSS[i] = r.WCSS
	}
	var best *cluster.Result
	if popts.Selection == phase.Silhouette {
		best = cluster.SelectSilhouetteCSR(m.Sparse, results, copts.Parallelism)
	} else {
		best = cluster.SelectElbow(results)
	}
	det.K = best.K
	det.Phases = phase.BuildPhases(e.profiles, best.Assign, best.Centroids, best.K)
	for i := range det.Phases {
		if e.sites.fill(&det.Phases[i], e.profiles, m, popts.CoverageThreshold, len(e.profiles)) {
			stats.sitesReused++
		} else {
			stats.sitesRecomputed++
		}
	}
	rsp.SetInt("k", int64(det.K)).SetBool("warm", stats.warmAccepted)
	return det, stats, nil
}

// Last returns the most recent refresh's detection (nil before the first
// refresh) — the live view of the run's phase structure.
func (e *Engine) Last() *phase.Detection { return e.last }

// Profiles returns the interval profiles accumulated so far.
func (e *Engine) Profiles() []interval.Profile { return e.profiles }

// Gaps returns the stream discontinuities repaired so far.
func (e *Engine) Gaps() []interval.Gap { return e.diff.Gaps() }

// Dims returns the feature-space dimensionality accumulated so far.
func (e *Engine) Dims() int { return e.builder.Dims() }

// Result is the engine's terminal output, mirroring the batch analysis.
type Result struct {
	// Detection is the final detection, byte-identical to the batch
	// phase.Detect over the same snapshots and options.
	Detection *phase.Detection
	// Profiles are the per-interval profiles the stream produced.
	Profiles []interval.Profile
	// Gaps lists every repaired discontinuity, in stream order.
	Gaps []interval.Gap
	// Refreshes counts detection passes, including the final one.
	Refreshes int
	// LateDrops counts dumps discarded at the bounded reorder window —
	// arrivals whose Seq the stream had already released past. Each is
	// also a GapLate entry in Gaps (robust mode).
	LateDrops int
}

// Finish flushes the engine and returns its terminal result.
func (e *Engine) Finish() (*Result, error) {
	if err := e.Flush(); err != nil {
		return nil, err
	}
	return &Result{
		Detection: e.last,
		Profiles:  e.profiles,
		Gaps:      e.diff.Gaps(),
		Refreshes: e.refreshes,
		LateDrops: e.diff.LateDrops(),
	}, nil
}

// LateDrops returns the count of dumps discarded at the bounded reorder
// window so far (see Differencer.LateDrops).
func (e *Engine) LateDrops() int { return e.diff.LateDrops() }

package stream_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"github.com/incprof/incprof/internal/apps"
	_ "github.com/incprof/incprof/internal/apps/gadget"
	_ "github.com/incprof/incprof/internal/apps/graph500"
	_ "github.com/incprof/incprof/internal/apps/lammps"
	_ "github.com/incprof/incprof/internal/apps/miniamr"
	_ "github.com/incprof/incprof/internal/apps/minife"
	"github.com/incprof/incprof/internal/cluster"
	"github.com/incprof/incprof/internal/profile"
	"github.com/incprof/incprof/internal/interval"
	"github.com/incprof/incprof/internal/mpi"
	"github.com/incprof/incprof/internal/online"
	"github.com/incprof/incprof/internal/phase"
	"github.com/incprof/incprof/internal/pipeline"
	"github.com/incprof/incprof/internal/stream"
)

// flatten serializes the comparable surface of a detection (Options carries
// func fields and cannot marshal). Byte equality of two flattenings is the
// PR's equivalence contract.
func flatten(t *testing.T, det *phase.Detection, gaps []interval.Gap) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		K        int
		WCSS     []float64
		Phases   []phase.Phase
		Matrix   interval.Matrix
		Profiles []interval.Profile
		Gaps     []interval.Gap
	}{det.K, det.WCSS, det.Phases, det.Matrix, det.Profiles, gaps})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func collect(t *testing.T, name string) []*profile.Sample {
	t.Helper()
	app, err := apps.New(name, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Collect(app, pipeline.CollectOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Snapshots[0]
}

func baseOpts() phase.Options {
	return phase.Options{
		Features: interval.FeatureOptions{Exclude: mpi.IsMPIFunc},
		Cluster:  cluster.Options{Seed: 7},
	}
}

// The tentpole contract: an engine fed one snapshot at a time — with live
// labeling on and periodic warm-started refreshes rebuilding the model
// mid-run — finishes with a detection byte-identical to the legacy batch
// composition (Difference + Detect) for every application.
func TestEngineFinalMatchesBatchAcrossApps(t *testing.T) {
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			snaps := collect(t, name)
			popts := baseOpts()

			profs, err := interval.Difference(snaps)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := phase.Detect(profs, popts)
			if err != nil {
				t.Fatal(err)
			}

			labels := 0
			refreshes := 0
			eng := stream.New(stream.Options{
				Phase:        popts,
				RefreshEvery: 7,
				OnLabel:      func(online.Event) { labels++ },
				OnRefresh:    func(stream.Refresh) { refreshes++ },
			})
			for _, s := range snaps {
				if err := eng.Emit(s); err != nil {
					t.Fatal(err)
				}
			}
			r, err := eng.Finish()
			if err != nil {
				t.Fatal(err)
			}

			if got, want := flatten(t, r.Detection, r.Gaps), flatten(t, batch, nil); !bytes.Equal(got, want) {
				t.Fatalf("streaming analysis diverged from batch (%d vs %d bytes)", len(got), len(want))
			}
			if labels != len(profs) {
				t.Fatalf("live labels = %d, want one per interval (%d)", labels, len(profs))
			}
			if wantMin := len(profs)/7 + 1; refreshes < wantMin {
				t.Fatalf("refreshes = %d, want >= %d", refreshes, wantMin)
			}
		})
	}
}

// Robust mode: the engine's repairs and final model match the batch robust
// path exactly, gaps included, on adversarial fault patterns.
func TestEngineRobustMatchesBatchOnFaultyStreams(t *testing.T) {
	popts := baseOpts()
	for seed := int64(1); seed <= 8; seed++ {
		snaps := faultySnaps(seed, 50)
		rres, err := interval.DifferenceRobust(snaps, interval.RobustOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		batch, err := phase.Detect(rres.Profiles, popts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		eng := stream.New(stream.Options{Robust: true, Phase: popts, RefreshEvery: 11})
		for _, s := range snaps {
			if err := eng.Emit(s); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		r, err := eng.Finish()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got, want := flatten(t, r.Detection, r.Gaps), flatten(t, batch, rres.Gaps); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: robust streaming analysis diverged from batch", seed)
		}
	}
}

// The engine's result is invariant under the clustering worker-pool size,
// like every other analysis entry point in the repo.
func TestEngineParallelismInvariance(t *testing.T) {
	snaps := collect(t, "graph500")
	run := func(parallelism int) []byte {
		popts := baseOpts()
		popts.Cluster.Parallelism = parallelism
		eng := stream.New(stream.Options{Phase: popts, RefreshEvery: 5})
		for _, s := range snaps {
			if err := eng.Emit(s); err != nil {
				t.Fatal(err)
			}
		}
		r, err := eng.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return flatten(t, r.Detection, r.Gaps)
	}
	if !bytes.Equal(run(1), run(8)) {
		t.Fatal("engine result depends on Parallelism")
	}
}

// With refreshes off, the engine's live labels are exactly the tracker's
// ObserveAll over the same profiles — including the low-confidence marks on
// repaired intervals, the PR 2 contract surfaced through the stream stage.
func TestEngineLabelsMatchTrackerIncludingLowConfidence(t *testing.T) {
	period := 10 * time.Millisecond
	snaps := []*profile.Sample{
		snap(0, time.Second, period, map[string][2]int64{"a": {100, 10}}),
		// Seqs 1-2 lost: split repair synthesizes low-confidence intervals.
		snap(3, 4*time.Second, period, map[string][2]int64{"a": {400, 40}}),
		snap(4, 5*time.Second, period, map[string][2]int64{"a": {500, 50}}),
	}
	rres, err := interval.DifferenceRobust(snaps, interval.RobustOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rres.Repaired() == 0 {
		t.Fatal("test premise broken: no repaired profiles")
	}
	want := online.New(online.Options{}).ObserveAll(rres.Profiles)

	var got []online.Event
	eng := stream.New(stream.Options{
		Robust:  true,
		Phase:   baseOpts(),
		OnLabel: func(ev online.Event) { got = append(got, ev) },
	})
	for _, s := range snaps {
		if err := eng.Emit(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine labels diverge from tracker:\n got %+v\nwant %+v", got, want)
	}
	lowconf := 0
	for _, ev := range got {
		if ev.LowConfidence {
			lowconf++
		}
	}
	if lowconf != rres.Repaired() {
		t.Fatalf("lowconf labels = %d, want %d (one per repaired interval)", lowconf, rres.Repaired())
	}
}

// phaseSnaps synthesizes a run with two cleanly-separated phases: "init"
// dominates the first 10 intervals, "solve" the rest.
func phaseSnaps(n int) []*profile.Sample {
	period := 10 * time.Millisecond
	var out []*profile.Sample
	initS, solveS := int64(0), int64(0)
	for i := 0; i < n; i++ {
		if i < 10 {
			initS += 100
		} else {
			solveS += 200
		}
		out = append(out, snap(i, time.Duration(i+1)*time.Second, period,
			map[string][2]int64{"init": {initS, int64(i + 1)}, "solve": {solveS, int64(i + 1)}}))
	}
	return out
}

// Incremental Algorithm 1: once a phase's membership and centroid stop
// changing between refreshes, its site selection is served from the cache
// instead of being recomputed.
func TestEngineReusesSiteSelectionsForStablePhases(t *testing.T) {
	var refreshes []stream.Refresh
	eng := stream.New(stream.Options{
		Phase:        baseOpts(),
		RefreshEvery: 10,
		OnRefresh:    func(r stream.Refresh) { refreshes = append(refreshes, r) },
	})
	for _, s := range phaseSnaps(30) {
		if err := eng.Emit(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	reused := 0
	for _, r := range refreshes {
		reused += r.SitesReused
	}
	if reused == 0 {
		t.Fatalf("no site selection reuse across refreshes: %+v", refreshes)
	}
}

// Last exposes the live model between refreshes, before the stream ends.
func TestEngineLastGivesLiveDetectionMidRun(t *testing.T) {
	eng := stream.New(stream.Options{Phase: baseOpts(), RefreshEvery: 5})
	snaps := phaseSnaps(12)
	for i, s := range snaps {
		if err := eng.Emit(s); err != nil {
			t.Fatal(err)
		}
		if i == 7 && eng.Last() == nil {
			t.Fatal("no live detection after first refresh")
		}
	}
	if eng.Last() == nil || len(eng.Last().Phases) == 0 {
		t.Fatal("live detection empty")
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
}

// Flush is idempotent and Finish after Flush returns the same result.
func TestEngineFlushIdempotent(t *testing.T) {
	eng := stream.New(stream.Options{Phase: baseOpts()})
	for _, s := range phaseSnaps(6) {
		if err := eng.Emit(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	r1, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Detection != r2.Detection || r1.Refreshes != r2.Refreshes {
		t.Fatal("Finish not stable after Flush")
	}
}

// An empty robust stream fails with the batch path's error.
func TestEngineEmptyRobustStreamErrors(t *testing.T) {
	eng := stream.New(stream.Options{Robust: true, Phase: baseOpts()})
	if _, err := eng.Finish(); err == nil {
		t.Fatal("empty robust stream did not error")
	}
}

package stream_test

import (
	"fmt"
	"testing"

	"github.com/incprof/incprof/internal/stream"
)

// collector is a terminal test sink recording everything it receives.
type collector[T any] struct {
	items   []T
	flushes int
}

func (c *collector[T]) Emit(v T) error { c.items = append(c.items, v); return nil }
func (c *collector[T]) Flush() error   { c.flushes++; return nil }

// doubler is a trivial 1→2 stage used to exercise Pipe/Stage mechanics.
type doubler struct{ down stream.Sink[int] }

func (d *doubler) Start(down stream.Sink[int]) { d.down = down }
func (d *doubler) Emit(v int) error {
	if err := d.down.Emit(v); err != nil {
		return err
	}
	return d.down.Emit(v * 10)
}
func (d *doubler) Flush() error { return d.down.Flush() }

func TestSliceSourceReplaysInOrderAndFlushesOnce(t *testing.T) {
	var c collector[int]
	if err := (stream.SliceSource[int]{Items: []int{3, 1, 2}}).Run(&c); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(c.items) != "[3 1 2]" {
		t.Fatalf("items = %v", c.items)
	}
	if c.flushes != 1 {
		t.Fatalf("flushes = %d, want 1", c.flushes)
	}
}

func TestSliceSourceStopsOnEmitError(t *testing.T) {
	boom := fmt.Errorf("boom")
	n := 0
	sink := stream.SinkFunc[int]{OnEmit: func(v int) error {
		n++
		if v == 2 {
			return boom
		}
		return nil
	}}
	err := (stream.SliceSource[int]{Items: []int{1, 2, 3}}).Run(sink)
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 2 {
		t.Fatalf("sink saw %d items after error, want 2", n)
	}
}

func TestPipeBindsStageToDownstream(t *testing.T) {
	var c collector[int]
	head := stream.Pipe[int, int](&doubler{}, &c)
	if err := (stream.SliceSource[int]{Items: []int{1, 2}}).Run(head); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(c.items) != "[1 10 2 20]" {
		t.Fatalf("items = %v", c.items)
	}
	if c.flushes != 1 {
		t.Fatalf("flushes = %d, want 1", c.flushes)
	}
}

func TestChanSourceDrainsUntilClose(t *testing.T) {
	ch := make(chan int, 4)
	for i := 0; i < 4; i++ {
		ch <- i
	}
	close(ch)
	var c collector[int]
	if err := (stream.ChanSource[int]{C: ch}).Run(&c); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(c.items) != "[0 1 2 3]" {
		t.Fatalf("items = %v", c.items)
	}
	if c.flushes != 1 {
		t.Fatalf("flushes = %d, want 1", c.flushes)
	}
}

func TestSinkFuncNilFlushIsNoop(t *testing.T) {
	s := stream.SinkFunc[int]{OnEmit: func(int) error { return nil }}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestInstrumentPassesThrough(t *testing.T) {
	var c collector[int]
	s := stream.Instrument[int]("test", &c)
	for i := 0; i < 3; i++ {
		if err := s.Emit(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(c.items) != 3 || c.flushes != 1 {
		t.Fatalf("items=%v flushes=%d", c.items, c.flushes)
	}
}

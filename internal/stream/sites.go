// sites.go makes Algorithm 1 incremental: site selection for a phase depends
// only on its membership, its centroid, the feature space, and the coverage
// threshold — so between refreshes in which a phase did not change, its
// greedy selection walk need not be repeated. The cache keys each phase by
// exactly those inputs and replays the (cheap) coverage-percentage crediting
// against the current run length on every hit, since App % alone depends on
// the total interval count.
package stream

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"github.com/incprof/incprof/internal/interval"
	"github.com/incprof/incprof/internal/obs"
	"github.com/incprof/incprof/internal/phase"
)

// siteCache memoizes per-phase Algorithm 1 selections across refreshes.
type siteCache struct {
	entries map[uint64][]phase.Site
}

func newSiteCache() *siteCache {
	return &siteCache{entries: make(map[uint64][]phase.Site)}
}

// key fingerprints everything the selection walk reads: the coverage
// threshold, the dimensionality of the feature space, the member interval
// set, and the centroid's exact bits. The profiles themselves are immutable
// once emitted and the matrix rows of the members are a function of
// (profiles, dims) — a dimension added by non-member intervals leaves member
// rows and the centroid untouched in the distance metric, and one added by a
// member changes the centroid bits, so the fingerprint is sound.
func (sc *siteCache) key(p *phase.Phase, dims int, threshold float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(math.Float64bits(threshold))
	put(uint64(dims))
	put(uint64(len(p.Intervals)))
	for _, idx := range p.Intervals {
		put(uint64(idx))
	}
	put(uint64(len(p.Centroid)))
	for _, v := range p.Centroid {
		put(math.Float64bits(v))
	}
	return h.Sum64()
}

// fill populates p.Sites, reusing the cached selection when the phase is
// unchanged since some earlier refresh and running phase.SelectPhaseSites
// otherwise. It reports whether the selection was reused. Coverage
// percentages are (re)credited either way, so App % reflects the current
// total interval count.
func (sc *siteCache) fill(p *phase.Phase, profiles []interval.Profile, m interval.Matrix, threshold float64, total int) bool {
	k := sc.key(p, m.Dims(), threshold)
	if sites, ok := sc.entries[k]; ok {
		p.Sites = append([]phase.Site(nil), sites...)
		creditSites(p, profiles, total)
		obs.C("stream.sites.reused").Inc()
		return true
	}
	phase.SelectPhaseSites(p, profiles, m, threshold, total)
	sc.entries[k] = append([]phase.Site(nil), p.Sites...)
	obs.C("stream.sites.recomputed").Inc()
	return false
}

// refreshStats aggregates one intermediate refresh's incremental accounting.
type refreshStats struct {
	warmAccepted    bool
	sitesReused     int
	sitesRecomputed int
}

// creditSites recomputes the per-site Phase % and App % columns for an
// already-selected site list, crediting each member interval to its
// earliest-selected active site exactly as the batch selection's final pass
// does.
func creditSites(p *phase.Phase, profiles []interval.Profile, total int) {
	if len(p.Intervals) == 0 {
		return
	}
	credit := make([]int, len(p.Sites))
	for _, idx := range p.Intervals {
		for si := range p.Sites {
			if profiles[idx].Active(p.Sites[si].Function) {
				credit[si]++
				break
			}
		}
	}
	for si := range p.Sites {
		p.Sites[si].PhasePct = 100 * float64(credit[si]) / float64(len(p.Intervals))
		if total > 0 {
			p.Sites[si].AppPct = 100 * float64(credit[si]) / float64(total)
		}
	}
}

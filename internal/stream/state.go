// state.go is the durability surface of the streaming engine: everything the
// engine accumulates between two accepted snapshots, exported as one plain
// serializable value and restorable into a fresh engine. The contract is
// exact resumption — an engine restored from State() and fed the rest of the
// stream produces a terminal Result byte-identical to the original engine
// running uninterrupted. internal/checkpoint persists these states (plus a
// WAL of the accepted snapshots since) to disk; this file owns only the
// in-memory capture.
//
// What is deliberately NOT part of the state:
//
//   - the feature matrix builder: it is a pure deterministic function of the
//     profile list and the engine options, so Restore rebuilds it by replay
//     instead of persisting a second copy of every row;
//   - the last intermediate Detection (Engine.Last): it is advisory live
//     output, recomputed at the next refresh, and the terminal Flush never
//     reads it;
//   - the per-interval row scratch buffer and tracing spans: pure
//     performance/observability state.
package stream

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/incprof/incprof/internal/profile"
	"github.com/incprof/incprof/internal/interval"
	"github.com/incprof/incprof/internal/online"
	"github.com/incprof/incprof/internal/phase"
)

// EngineState is the full serializable state of an Engine between two
// accepted snapshots. All reference fields are deep-copied on export, so a
// state stays valid however the live engine moves on.
type EngineState struct {
	// Snaps counts snapshots emitted into the engine.
	Snaps int
	// SinceRefresh and Refreshes restore the refresh cadence mid-cycle.
	SinceRefresh int
	Refreshes    int
	// Profiles is every interval profile emitted so far; Restore replays
	// them through a fresh MatrixBuilder, so the matrix needs no separate
	// representation.
	Profiles []interval.Profile
	// Differencer is the ingest stage's state, including the pending
	// reorder window.
	Differencer DifferencerState
	// Tracker is the live label tracker's state, nil when the engine runs
	// without one (no OnLabel).
	Tracker *online.TrackerState
	// MiniBatch is the incremental warm-start model, nil before the first
	// k-means refresh.
	MiniBatch *MiniBatchState
	// Sites is the incremental Algorithm 1 cache, sorted by key so the
	// serialized form is deterministic.
	Sites []SiteCacheEntry
}

// DifferencerState is the serializable state of the snapshot→profile stage.
type DifferencerState struct {
	// N and Prev are the strict kernel's state (profiles emitted, last
	// snapshot); Robust replaces them in robust mode.
	N      int
	Prev   *profile.Sample
	Robust *interval.RobustStreamState
	// Gaps is every discontinuity repaired so far, in stream order.
	Gaps []interval.Gap
	// Window holds the bounded reorder window's pending snapshots in
	// arrival order; re-pushing them in this order reproduces the heap's
	// release order exactly (ties release in arrival order).
	Window []*profile.Sample
	// Released is the highest Seq already handed to the kernel (-1 before
	// the first); LateDrops counts dumps discarded past the window bound.
	Released  int
	LateDrops int
}

// MiniBatchState is the serializable warm-start model.
type MiniBatchState struct {
	Centroids [][]float64
	Counts    []int64
}

// SiteCacheEntry is one memoized Algorithm 1 selection.
type SiteCacheEntry struct {
	Key   uint64
	Sites []phase.Site
}

// State exports the engine's full state. It must be called between Emit
// calls (the engine is not safe for concurrent use) and before Flush; a
// flushed engine has already discarded its incremental state into the
// terminal result.
func (e *Engine) State() (*EngineState, error) {
	if e.flushed {
		return nil, fmt.Errorf("stream: cannot export state of a flushed engine")
	}
	st := &EngineState{
		Snaps:        e.snaps,
		SinceRefresh: e.sinceRefresh,
		Refreshes:    e.refreshes,
		Profiles:     append([]interval.Profile(nil), e.profiles...),
		Differencer:  e.diff.state(),
	}
	if e.tracker != nil {
		st.Tracker = e.tracker.State()
	}
	if e.mb != nil {
		mbs := &MiniBatchState{
			Centroids: make([][]float64, len(e.mb.centroids)),
			Counts:    append([]int64(nil), e.mb.counts...),
		}
		for i, c := range e.mb.centroids {
			mbs.Centroids[i] = append([]float64(nil), c...)
		}
		st.MiniBatch = mbs
	}
	keys := make([]uint64, 0, len(e.sites.entries))
	for k := range e.sites.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		st.Sites = append(st.Sites, SiteCacheEntry{
			Key:   k,
			Sites: append([]phase.Site(nil), e.sites.entries[k]...),
		})
	}
	return st, nil
}

// Restore builds an engine from an exported state, wired with opts exactly
// as New would. opts must describe the same analysis the exported engine
// ran (same phase options, robust/gap/reorder settings, refresh cadence):
// the engine cannot verify analysis equivalence itself — the checkpoint
// layer fingerprints the configuration for that — but structural mismatches
// (strict state into a robust engine or vice versa) are rejected here.
func Restore(opts Options, st *EngineState) (*Engine, error) {
	if opts.Robust != (st.Differencer.Robust != nil) {
		return nil, fmt.Errorf("stream: restore mode mismatch: engine robust=%v, state robust=%v",
			opts.Robust, st.Differencer.Robust != nil)
	}
	e := New(opts)
	e.snaps = st.Snaps
	e.sinceRefresh = st.SinceRefresh
	e.refreshes = st.Refreshes
	e.profiles = append([]interval.Profile(nil), st.Profiles...)
	// The builder is a deterministic function of (profiles, options):
	// replaying the profiles reproduces rows, dimension set, and growth
	// history exactly as the original engine built them one interval at a
	// time.
	for i := range e.profiles {
		e.builder.Add(&e.profiles[i])
	}
	if err := e.diff.restore(st.Differencer); err != nil {
		return nil, err
	}
	if e.tracker != nil && st.Tracker != nil {
		e.tracker.Restore(st.Tracker)
	}
	if st.MiniBatch != nil {
		mb := &miniBatch{
			centroids: make([][]float64, len(st.MiniBatch.Centroids)),
			counts:    append([]int64(nil), st.MiniBatch.Counts...),
		}
		for i, c := range st.MiniBatch.Centroids {
			mb.centroids[i] = append([]float64(nil), c...)
		}
		e.mb = mb
	}
	for _, ent := range st.Sites {
		e.sites.entries[ent.Key] = append([]phase.Site(nil), ent.Sites...)
	}
	return e, nil
}

// state exports the differencer, deep-copying snapshots and gaps.
func (d *Differencer) state() DifferencerState {
	st := DifferencerState{
		N:         d.n,
		Gaps:      append([]interval.Gap(nil), d.gaps...),
		Released:  d.released,
		LateDrops: d.lateDrops,
	}
	if d.prev != nil {
		st.Prev = d.prev.Clone()
	}
	if d.rs != nil {
		rs := d.rs.State()
		st.Robust = &rs
	}
	if d.window.Len() > 0 {
		entries := append([]snapEntry(nil), d.window.items...)
		sort.Slice(entries, func(i, j int) bool { return entries[i].serial < entries[j].serial })
		for _, ent := range entries {
			st.Window = append(st.Window, ent.s.Clone())
		}
	}
	return st
}

// restore loads an exported state into the differencer in place (the engine
// graph holds a pointer to it, so it must not be replaced).
func (d *Differencer) restore(st DifferencerState) error {
	if (d.rs != nil) != (st.Robust != nil) {
		return fmt.Errorf("stream: differencer mode mismatch")
	}
	if len(st.Window) > 0 && d.opts.Reorder <= 0 {
		return fmt.Errorf("stream: state has %d pending reorder-window snapshots but the window is disabled", len(st.Window))
	}
	d.n = st.N
	d.gaps = append([]interval.Gap(nil), st.Gaps...)
	d.released = st.Released
	d.lateDrops = st.LateDrops
	if st.Prev != nil {
		d.prev = st.Prev.Clone()
	}
	if st.Robust != nil {
		d.rs = interval.RestoreRobustStream(*st.Robust)
	}
	// Re-pushing the pending snapshots in their original arrival order
	// reassigns fresh serials that preserve the original tie-break order,
	// so the window releases them exactly as the exported heap would have.
	d.window = snapHeap{}
	for _, s := range st.Window {
		heap.Push(&d.window, s.Clone())
	}
	return nil
}

package stream_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/incprof/incprof/internal/profile"
	"github.com/incprof/incprof/internal/online"
	"github.com/incprof/incprof/internal/stream"
)

// feedRest drives both engines through the same tail of a stream and
// compares their terminal flattenings.
func finishBoth(t *testing.T, a, b *stream.Engine, tail []*profile.Sample) {
	t.Helper()
	for _, s := range tail {
		if err := a.Emit(s); err != nil {
			t.Fatal(err)
		}
		if err := b.Emit(s.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	ra, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ga := flatten(t, ra.Detection, ra.Gaps)
	gb := flatten(t, rb.Detection, rb.Gaps)
	if !bytes.Equal(ga, gb) {
		t.Fatalf("restored engine diverged from original (%d vs %d bytes)", len(gb), len(ga))
	}
	if ra.LateDrops != rb.LateDrops {
		t.Fatalf("LateDrops %d != %d after restore", rb.LateDrops, ra.LateDrops)
	}
}

// jsonRoundTrip pushes the state through its serialized form, as the
// checkpoint layer does, so drift between the struct and its encoding shows
// up here and not only in the durability suite.
func jsonRoundTrip(t *testing.T, st *stream.EngineState) *stream.EngineState {
	t.Helper()
	buf, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var out stream.EngineState
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// State/Restore mid-stream: the restored engine finishes byte-identically
// to the original continuing from the same point, with live labels and
// warm-started refreshes on so tracker, mini-batch, and site-cache state
// all matter.
func TestEngineStateRestoreMidStreamBitIdentity(t *testing.T) {
	snaps := collect(t, "graph500")
	for _, cut := range []int{1, 7, len(snaps) / 2, len(snaps) - 1} {
		opts := stream.Options{
			Phase:        baseOpts(),
			RefreshEvery: 5,
			OnLabel:      func(online.Event) {},
		}
		a := stream.New(opts)
		for _, s := range snaps[:cut] {
			if err := a.Emit(s); err != nil {
				t.Fatal(err)
			}
		}
		st, err := a.State()
		if err != nil {
			t.Fatal(err)
		}
		b, err := stream.Restore(opts, jsonRoundTrip(t, st))
		if err != nil {
			t.Fatal(err)
		}
		finishBoth(t, a, b, snaps[cut:])
	}
}

// Robust mode with gaps pending: restore preserves the robust differencer's
// prev snapshot, timestamp offset, and gap history.
func TestEngineStateRestoreRobustWithGaps(t *testing.T) {
	snaps := faultySnaps(3, 40)
	opts := stream.Options{Robust: true, Phase: baseOpts(), RefreshEvery: 9}
	a := stream.New(opts)
	for _, s := range snaps[:20] {
		if err := a.Emit(s); err != nil {
			t.Fatal(err)
		}
	}
	st, err := a.State()
	if err != nil {
		t.Fatal(err)
	}
	b, err := stream.Restore(opts, jsonRoundTrip(t, st))
	if err != nil {
		t.Fatal(err)
	}
	finishBoth(t, a, b, snaps[20:])
}

// A reorder window with snapshots still pending restores exactly: the
// restored engine releases them in the same order, including the
// arrival-order tie-break between equal Seqs.
func TestEngineStateRestorePendingReorderWindow(t *testing.T) {
	period := 10 * time.Millisecond
	mk := func(seq int, samples int64) *profile.Sample {
		return snap(seq, time.Duration(seq+1)*time.Second, period, map[string][2]int64{"a": {samples, samples / 10}})
	}
	// Out-of-order arrivals that leave seqs 3 and 2 pending in the window.
	feedA := []*profile.Sample{mk(0, 100), mk(1, 200), mk(3, 400), mk(2, 300)}
	tail := []*profile.Sample{mk(4, 500), mk(5, 600)}

	opts := stream.Options{Robust: true, Reorder: 4, Phase: baseOpts()}
	a := stream.New(opts)
	for _, s := range feedA {
		if err := a.Emit(s); err != nil {
			t.Fatal(err)
		}
	}
	st, err := a.State()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Differencer.Window) == 0 {
		t.Fatal("test premise broken: reorder window empty at cut point")
	}
	b, err := stream.Restore(opts, jsonRoundTrip(t, st))
	if err != nil {
		t.Fatal(err)
	}
	finishBoth(t, a, b, tail)
}

// State after Flush is an error — the incremental state is gone.
func TestEngineStateAfterFlushErrors(t *testing.T) {
	eng := stream.New(stream.Options{Phase: baseOpts()})
	for _, s := range phaseSnaps(4) {
		if err := eng.Emit(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.State(); err == nil {
		t.Fatal("State after Flush did not error")
	}
}

// Restore refuses a state whose differencing mode disagrees with the
// options — resuming a robust stream through a strict engine (or vice
// versa) would silently change the analysis.
func TestEngineStateRestoreModeMismatch(t *testing.T) {
	eng := stream.New(stream.Options{Robust: true, Phase: baseOpts()})
	for _, s := range phaseSnaps(4) {
		if err := eng.Emit(s); err != nil {
			t.Fatal(err)
		}
	}
	st, err := eng.State()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Restore(stream.Options{Phase: baseOpts()}, st); err == nil {
		t.Fatal("mode mismatch not rejected")
	}
}

// Strict mode surfaces a bounded-window drop as a clear error naming the
// window, not a confusing timestamp failure; robust mode absorbs it as a
// GapLate and counts it.
func TestLateDropSurfacing(t *testing.T) {
	period := 10 * time.Millisecond
	mk := func(seq int, samples int64) *profile.Sample {
		return snap(seq, time.Duration(seq+1)*time.Second, period, map[string][2]int64{"a": {samples, 1}})
	}

	t.Run("strict", func(t *testing.T) {
		eng := stream.New(stream.Options{Reorder: 1, Phase: baseOpts()})
		for _, s := range []*profile.Sample{mk(0, 100), mk(1, 200), mk(2, 300), mk(3, 400)} {
			if err := eng.Emit(s); err != nil {
				t.Fatal(err)
			}
		}
		// Seq 0 already released past a window of 1: late.
		err := eng.Emit(mk(0, 100))
		if err == nil || !strings.Contains(err.Error(), "reorder") {
			t.Fatalf("late arrival error = %v, want mention of the reorder window", err)
		}
		if eng.LateDrops() != 1 {
			t.Fatalf("LateDrops = %d, want 1", eng.LateDrops())
		}
	})

	t.Run("robust", func(t *testing.T) {
		eng := stream.New(stream.Options{Robust: true, Reorder: 1, Phase: baseOpts()})
		for _, s := range []*profile.Sample{mk(0, 100), mk(1, 200), mk(2, 300), mk(3, 400), mk(0, 100), mk(4, 500)} {
			if err := eng.Emit(s); err != nil {
				t.Fatal(err)
			}
		}
		r, err := eng.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if r.LateDrops != 1 {
			t.Fatalf("LateDrops = %d, want 1", r.LateDrops)
		}
		late := 0
		for _, g := range r.Gaps {
			if g.Kind.String() == "late" {
				late++
			}
		}
		if late != 1 {
			t.Fatalf("late gaps = %d, want 1 (gaps: %+v)", late, r.Gaps)
		}
	})
}

// Package stream is the incremental analysis engine: the paper's point is
// that profile analysis can keep pace with 1 Hz dumps, so phase structure is
// available while the application still runs, yet the original pipeline was
// strictly batch — every layer demanded the complete snapshot list up front.
// This package restructures those layers as stages of a typed stream graph
// (Source[T] → Stage → Sink) through which cumulative snapshots flow one at
// a time:
//
//	snapshots → Differencer → interval.Profile → Engine
//	                                              ├─ interval.MatrixBuilder (append-only rows, growing dims)
//	                                              ├─ online.Tracker         (live labels, reseeded per refresh)
//	                                              ├─ mini-batch k-means     (warm-start seed for refreshes)
//	                                              └─ every R intervals: warm-started cluster.Sweep refresh
//	                                                 + incremental Algorithm 1 (per-phase site cache)
//
// The batch path is the same graph driven from a slice: pipeline.Analyze
// feeds an Engine from its snapshot list and the terminal refresh runs the
// identical phase.DetectMatrix call a batch phase.Detect performs, so for a
// fixed seed the streaming result is byte-identical to the batch result.
// The live path (cmd/phasedetect -follow, a collector Sink) feeds the same
// engine one dump at a time and additionally surfaces labels, transitions,
// gaps, and site updates as they happen.
package stream

import (
	"time"

	"github.com/incprof/incprof/internal/obs"
)

// A Sink consumes a typed stream. Emit ingests one value; Flush marks end of
// stream, releasing anything the sink buffered. Implementations are not
// required to be safe for concurrent use: a stream is a single logical
// sequence.
type Sink[T any] interface {
	Emit(v T) error
	Flush() error
}

// A Stage transforms a stream: it consumes In values and forwards derived
// Out values to the downstream sink bound with Start. A stage may fan one
// input into many outputs (the differencer's gap repair) or absorb inputs
// entirely (a reorder buffer holding a value back).
type Stage[In, Out any] interface {
	// Start binds the downstream sink; it must be called before the first
	// Emit.
	Start(down Sink[Out])
	Sink[In]
}

// A Source produces a stream into a sink, flushing it when the stream ends.
type Source[T any] interface {
	Run(down Sink[T]) error
}

// Pipe binds a stage to its downstream sink and returns the stage as the
// upstream-facing sink, composing graphs right to left:
//
//	head := Pipe[A, B](stageAB, Pipe[B, C](stageBC, terminalC))
func Pipe[In, Out any](s Stage[In, Out], down Sink[Out]) Sink[In] {
	s.Start(down)
	return s
}

// SinkFunc adapts plain functions to the Sink interface; a nil OnFlush means
// flushing is a no-op.
type SinkFunc[T any] struct {
	OnEmit  func(T) error
	OnFlush func() error
}

// Emit implements Sink.
func (s SinkFunc[T]) Emit(v T) error { return s.OnEmit(v) }

// Flush implements Sink.
func (s SinkFunc[T]) Flush() error {
	if s.OnFlush == nil {
		return nil
	}
	return s.OnFlush()
}

// Discard is a Sink that drops everything — the terminal for graphs whose
// stages accumulate their results internally.
type Discard[T any] struct{}

// Emit implements Sink.
func (Discard[T]) Emit(T) error { return nil }

// Flush implements Sink.
func (Discard[T]) Flush() error { return nil }

// SliceSource replays a slice into the graph — the batch driver. Emit
// errors abort the replay; the sink is flushed only when every item was
// accepted.
type SliceSource[T any] struct{ Items []T }

// Run implements Source.
func (s SliceSource[T]) Run(down Sink[T]) error {
	for _, v := range s.Items {
		if err := down.Emit(v); err != nil {
			return err
		}
	}
	return down.Flush()
}

// ChanSource drains a channel into the graph until it closes — the live
// driver. The channel's backlog is exported as the stream.source.queue
// gauge (volatile: its value is timing-dependent, so it stays out of
// deterministic metric exports) so a consumer that falls behind its
// producer is visible.
type ChanSource[T any] struct{ C <-chan T }

// Run implements Source.
func (s ChanSource[T]) Run(down Sink[T]) error {
	depth := obs.GV("stream.source.queue")
	for v := range s.C {
		depth.Set(int64(len(s.C)))
		if err := down.Emit(v); err != nil {
			return err
		}
	}
	depth.Set(0)
	return down.Flush()
}

// instrumented wraps a sink with per-stage observability: an item counter
// and a latency histogram (stream.<name>.items / stream.<name>.latency).
// Counts are deterministic for a fixed input; latencies are wall-clock and
// surface only in timing-enabled exports.
type instrumented[T any] struct {
	down  Sink[T]
	items *obs.Counter
	lat   *obs.Histogram
}

// Instrument wraps down in per-stage metrics under the given stage name.
func Instrument[T any](name string, down Sink[T]) Sink[T] {
	return &instrumented[T]{
		down:  down,
		items: obs.C("stream." + name + ".items"),
		lat:   obs.H("stream." + name + ".latency"),
	}
}

// Emit implements Sink.
func (i *instrumented[T]) Emit(v T) error {
	i.items.Inc()
	if i.lat == nil {
		return i.down.Emit(v)
	}
	start := time.Now()
	err := i.down.Emit(v)
	i.lat.Observe(time.Since(start))
	return err
}

// Flush implements Sink.
func (i *instrumented[T]) Flush() error { return i.down.Flush() }

// Package vclock provides a deterministic virtual clock with timer
// scheduling.
//
// The IncProf reproduction executes applications in virtual time: every unit
// of application work advances a Clock by a modeled duration, and periodic
// activities (profile sampling, IncProf snapshot dumps, heartbeat interval
// flushes) are timers scheduled on the same Clock. This makes multi-minute
// "runs" deterministic and millisecond-fast while preserving the interval
// semantics the paper's analysis depends on.
//
// A Clock is owned by a single goroutine (one MPI rank in this codebase) and
// is not safe for concurrent use. Rank synchronization is performed by the
// owning goroutines themselves (see package mpi), which advance their own
// clocks to an agreed time.
package vclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Conventional same-deadline priorities used across the reproduction: when a
// profiling-clock tick, a heartbeat interval flush, and an IncProf snapshot
// dump all land on the same virtual instant (t = k·1s), they must fire in
// that order so the dump observes a fully-accounted interval.
const (
	PrioritySampler = 0   // profiling clock ticks
	PriorityFlush   = 50  // heartbeat interval flushes
	PriorityDump    = 100 // IncProf snapshot dumps
)

// Time is a virtual timestamp: nanoseconds since the start of the run.
type Time int64

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) time.Duration { return time.Duration(t - earlier) }

// Seconds returns t as floating-point seconds since the start of the run.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Duration returns t as a duration since the start of the run.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the timestamp as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Timer is a handle to a scheduled callback. A Timer fires at most once;
// periodic behavior is built by rescheduling (see Ticker).
type Timer struct {
	when    Time
	pri     int    // lower fires first at equal deadlines
	seq     uint64 // final tie-break: schedule order
	index   int    // heap index, -1 when not queued
	fn      func(now Time)
	stopped bool
}

// When returns the deadline the timer is scheduled for.
func (t *Timer) When() Time { return t.when }

// Stop cancels the timer. It reports whether the timer was still pending.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t.stopped || t.index < 0 {
		t.stopped = true
		return false
	}
	t.stopped = true
	return true
}

// Clock is a deterministic virtual clock. The zero value is ready to use and
// reads 0 (the start of the run).
type Clock struct {
	now    Time
	timers timerHeap
	seq    uint64
	firing bool
}

// New returns a Clock reading time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// AtFunc schedules fn to run when the clock reaches t. Deadlines in the past
// (or at the current instant) fire on the next Advance or Fire call, not
// immediately. Callbacks run on the goroutine that advances the clock.
func (c *Clock) AtFunc(t Time, fn func(now Time)) *Timer {
	return c.AtFuncPriority(t, 0, fn)
}

// AtFuncPriority is AtFunc with an explicit priority: among timers sharing a
// deadline, lower priorities fire first (schedule order breaks remaining
// ties). Observers that must see an instant before state is dumped — e.g.
// the profiling clock versus the IncProf snapshot dump, both at t = k·1s —
// encode that ordering here rather than relying on scheduling accidents.
func (c *Clock) AtFuncPriority(t Time, pri int, fn func(now Time)) *Timer {
	if fn == nil {
		panic("vclock: AtFunc with nil callback")
	}
	c.seq++
	tm := &Timer{when: t, pri: pri, seq: c.seq, fn: fn, index: -1}
	heap.Push(&c.timers, tm)
	return tm
}

// AfterFunc schedules fn to run d from now. A non-positive d schedules the
// callback for the current instant; it fires on the next Advance or Fire.
func (c *Clock) AfterFunc(d time.Duration, fn func(now Time)) *Timer {
	return c.AtFunc(c.now.Add(d), fn)
}

// NextDeadline returns the earliest pending timer deadline. The second
// result is false when no timers are pending.
func (c *Clock) NextDeadline() (Time, bool) {
	c.dropStopped()
	if len(c.timers) == 0 {
		return 0, false
	}
	return c.timers[0].when, true
}

// dropStopped removes cancelled timers sitting at the heap root so that
// NextDeadline reflects a live deadline.
func (c *Clock) dropStopped() {
	for len(c.timers) > 0 && c.timers[0].stopped {
		heap.Pop(&c.timers)
	}
}

// Fire runs every timer whose deadline is at or before the current time, in
// deadline order (schedule order for equal deadlines). Timers scheduled by
// callbacks for the current instant fire within the same call.
func (c *Clock) Fire() {
	if c.firing {
		return // a callback advanced the clock; the outer Fire loop resumes
	}
	c.firing = true
	defer func() { c.firing = false }()
	for {
		c.dropStopped()
		if len(c.timers) == 0 || c.timers[0].when > c.now {
			return
		}
		tm := heap.Pop(&c.timers).(*Timer)
		tm.fn(c.now)
	}
}

// Advance moves the clock forward by d, firing due timers as their deadlines
// are reached. Each timer observes the clock at (or after) its own deadline:
// the clock steps to successive deadlines rather than jumping straight to
// now+d. Advance panics on negative d.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("vclock: Advance with negative duration")
	}
	target := c.now.Add(d)
	for {
		c.dropStopped()
		if len(c.timers) == 0 || c.timers[0].when > target {
			break
		}
		next := c.timers[0].when
		if next > c.now {
			c.now = next
		}
		c.Fire()
	}
	if target > c.now {
		c.now = target
	}
}

// AdvanceTo moves the clock forward to t, firing due timers. It is a no-op
// if t is not after the current time.
func (c *Clock) AdvanceTo(t Time) {
	if t <= c.now {
		return
	}
	c.Advance(t.Sub(c.now))
}

// Step advances the clock by at most d, stopping early at the next pending
// timer deadline. It fires the timers due at the new time and returns the
// duration actually advanced. Step is the primitive the execution runtime
// uses to attribute work to the running function in pieces that respect
// timer boundaries (profile samples, snapshot dumps).
func (c *Clock) Step(d time.Duration) time.Duration {
	return c.StepFunc(d, nil)
}

// StepFunc is Step with a hook: before is invoked after the clock has moved
// but before the timers due at the new instant fire. The execution runtime
// uses it to deliver work-attribution events ahead of same-instant timer
// callbacks (a snapshot dump at t=1s must observe all work up to 1s).
func (c *Clock) StepFunc(d time.Duration, before func(step time.Duration, now Time)) time.Duration {
	if d < 0 {
		panic("vclock: Step with negative duration")
	}
	target := c.now.Add(d)
	c.dropStopped()
	if len(c.timers) > 0 && c.timers[0].when > c.now && c.timers[0].when < target {
		target = c.timers[0].when
	}
	step := target.Sub(c.now)
	c.now = target
	if before != nil {
		before(step, c.now)
	}
	c.Fire()
	return step
}

// PendingTimers reports the number of live (unstopped, unfired) timers.
func (c *Clock) PendingTimers() int {
	n := 0
	for _, t := range c.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

// Ticker repeatedly invokes a callback at a fixed virtual period.
type Ticker struct {
	clock  *Clock
	period time.Duration
	pri    int
	fn     func(now Time)
	timer  *Timer
	done   bool
}

// NewTicker schedules fn to run every period at priority 0, with the first
// firing one period from now. It panics if period is not positive.
func (c *Clock) NewTicker(period time.Duration, fn func(now Time)) *Ticker {
	return c.NewTickerPriority(period, 0, fn)
}

// NewTickerPriority is NewTicker with an explicit same-deadline priority
// (see AtFuncPriority).
func (c *Clock) NewTickerPriority(period time.Duration, pri int, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("vclock: NewTicker with non-positive period")
	}
	tk := &Ticker{clock: c, period: period, pri: pri, fn: fn}
	tk.schedule()
	return tk
}

func (tk *Ticker) schedule() {
	tk.timer = tk.clock.AtFuncPriority(tk.clock.Now().Add(tk.period), tk.pri, func(now Time) {
		if tk.done {
			return
		}
		tk.fn(now)
		if !tk.done {
			tk.schedule()
		}
	})
}

// Stop cancels the ticker; no further callbacks run.
func (tk *Ticker) Stop() {
	tk.done = true
	if tk.timer != nil {
		tk.timer.Stop()
	}
}

// Period returns the ticker's firing period.
func (tk *Ticker) Period() time.Duration { return tk.period }

// timerHeap is a min-heap on (when, seq).
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroClockReadsZero(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := New()
	c.Advance(3 * time.Second)
	if got := c.Now(); got != Time(3*time.Second) {
		t.Fatalf("Now() = %v, want 3s", got)
	}
	c.Advance(250 * time.Millisecond)
	if got := c.Now().Seconds(); got != 3.25 {
		t.Fatalf("Seconds() = %v, want 3.25", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-1)
}

func TestAfterFuncFiresAtDeadline(t *testing.T) {
	c := New()
	var fired []Time
	c.AfterFunc(2*time.Second, func(now Time) { fired = append(fired, now) })
	c.Advance(1 * time.Second)
	if len(fired) != 0 {
		t.Fatalf("timer fired early at %v", fired)
	}
	c.Advance(5 * time.Second)
	if len(fired) != 1 || fired[0] != Time(2*time.Second) {
		t.Fatalf("fired = %v, want exactly [2s]; timer must observe its own deadline, not the advance target", fired)
	}
}

func TestTimersFireInDeadlineOrder(t *testing.T) {
	c := New()
	var order []int
	c.AfterFunc(3*time.Second, func(Time) { order = append(order, 3) })
	c.AfterFunc(1*time.Second, func(Time) { order = append(order, 1) })
	c.AfterFunc(2*time.Second, func(Time) { order = append(order, 2) })
	c.Advance(10 * time.Second)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", order, want)
		}
	}
}

func TestEqualDeadlinesFireInScheduleOrder(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Second, func(Time) { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("equal-deadline order = %v, want ascending schedule order", order)
		}
	}
}

func TestStopPreventsFiring(t *testing.T) {
	c := New()
	fired := false
	tm := c.AfterFunc(time.Second, func(Time) { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestCallbackMayScheduleForCurrentInstant(t *testing.T) {
	c := New()
	var order []string
	c.AfterFunc(time.Second, func(now Time) {
		order = append(order, "outer")
		c.AtFunc(now, func(Time) { order = append(order, "inner") })
	})
	c.Advance(time.Second)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v, want [outer inner] within one Advance", order)
	}
}

func TestStepStopsAtDeadline(t *testing.T) {
	c := New()
	fired := 0
	c.AfterFunc(1*time.Second, func(Time) { fired++ })
	step := c.Step(3 * time.Second)
	if step != 1*time.Second {
		t.Fatalf("Step = %v, want 1s (stop at deadline)", step)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 after stepping onto deadline", fired)
	}
	step = c.Step(3 * time.Second)
	if step != 3*time.Second {
		t.Fatalf("second Step = %v, want full 3s with no timers pending", step)
	}
	if c.Now() != Time(4*time.Second) {
		t.Fatalf("Now = %v, want 4s", c.Now())
	}
}

func TestStepFiresDeadlineAtCurrentInstant(t *testing.T) {
	c := New()
	fired := 0
	c.AtFunc(0, func(Time) { fired++ })
	if got := c.Step(0); got != 0 {
		t.Fatalf("Step(0) = %v, want 0", got)
	}
	if fired != 1 {
		t.Fatalf("due-now timer did not fire on Step; fired = %d", fired)
	}
}

func TestAdvanceToIsIdempotentBackwards(t *testing.T) {
	c := New()
	c.Advance(5 * time.Second)
	c.AdvanceTo(Time(3 * time.Second)) // in the past: no-op
	if c.Now() != Time(5*time.Second) {
		t.Fatalf("AdvanceTo moved time backwards: %v", c.Now())
	}
	c.AdvanceTo(Time(8 * time.Second))
	if c.Now() != Time(8*time.Second) {
		t.Fatalf("AdvanceTo(8s) -> %v", c.Now())
	}
}

func TestTickerFiresEveryPeriod(t *testing.T) {
	c := New()
	var at []Time
	tk := c.NewTicker(time.Second, func(now Time) { at = append(at, now) })
	c.Advance(3500 * time.Millisecond)
	if len(at) != 3 {
		t.Fatalf("ticker fired %d times in 3.5s, want 3 (at 1s,2s,3s): %v", len(at), at)
	}
	for i, ts := range at {
		if want := Time((i + 1) * int(time.Second)); ts != want {
			t.Fatalf("tick %d at %v, want %v", i, ts, want)
		}
	}
	tk.Stop()
	c.Advance(10 * time.Second)
	if len(at) != 3 {
		t.Fatalf("ticker fired after Stop: %v", at)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	c := New()
	n := 0
	var tk *Ticker
	tk = c.NewTicker(time.Second, func(Time) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	c.Advance(10 * time.Second)
	if n != 2 {
		t.Fatalf("ticker fired %d times, want 2 (stopped from its own callback)", n)
	}
}

func TestNewTickerBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(0) did not panic")
		}
	}()
	New().NewTicker(0, func(Time) {})
}

func TestNextDeadline(t *testing.T) {
	c := New()
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("empty clock reported a deadline")
	}
	tm := c.AfterFunc(4*time.Second, func(Time) {})
	c.AfterFunc(9*time.Second, func(Time) {})
	if d, ok := c.NextDeadline(); !ok || d != Time(4*time.Second) {
		t.Fatalf("NextDeadline = %v,%v want 4s,true", d, ok)
	}
	tm.Stop()
	if d, ok := c.NextDeadline(); !ok || d != Time(9*time.Second) {
		t.Fatalf("NextDeadline after Stop = %v,%v want 9s,true", d, ok)
	}
}

func TestPendingTimers(t *testing.T) {
	c := New()
	t1 := c.AfterFunc(time.Second, func(Time) {})
	c.AfterFunc(2*time.Second, func(Time) {})
	if got := c.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers = %d, want 2", got)
	}
	t1.Stop()
	if got := c.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers after stop = %d, want 1", got)
	}
	c.Advance(5 * time.Second)
	if got := c.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers after advance = %d, want 0", got)
	}
}

func TestTimeHelpers(t *testing.T) {
	ts := Time(1500 * time.Millisecond)
	if got := ts.Add(500 * time.Millisecond); got != Time(2*time.Second) {
		t.Fatalf("Add: got %v", got)
	}
	if got := ts.Sub(Time(time.Second)); got != 500*time.Millisecond {
		t.Fatalf("Sub: got %v", got)
	}
	if got := ts.Duration(); got != 1500*time.Millisecond {
		t.Fatalf("Duration: got %v", got)
	}
	if got := ts.String(); got != "1.500s" {
		t.Fatalf("String: got %q", got)
	}
}

// Property: however an advance is split into pieces, the set of fired timers
// and the final time are identical to a single big advance.
func TestPropertySplitAdvanceEquivalence(t *testing.T) {
	f := func(seed int64, deadlinesMs []uint16, splitsMs []uint16) bool {
		if len(deadlinesMs) > 64 || len(splitsMs) > 64 {
			return true
		}
		run := func(split bool) (Time, []int) {
			c := New()
			var fired []int
			for i, ms := range deadlinesMs {
				i := i
				c.AfterFunc(time.Duration(ms)*time.Millisecond, func(Time) { fired = append(fired, i) })
			}
			var total time.Duration
			for _, ms := range splitsMs {
				total += time.Duration(ms) * time.Millisecond
			}
			if split {
				for _, ms := range splitsMs {
					c.Advance(time.Duration(ms) * time.Millisecond)
				}
			} else {
				c.Advance(total)
			}
			return c.Now(), fired
		}
		nowA, firedA := run(false)
		nowB, firedB := run(true)
		if nowA != nowB || len(firedA) != len(firedB) {
			return false
		}
		for i := range firedA {
			if firedA[i] != firedB[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Step never overshoots its budget and never skips a deadline.
func TestPropertyStepRespectsDeadlines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		deadlines := make(map[Time]bool)
		for i := 0; i < 20; i++ {
			d := time.Duration(rng.Intn(5000)) * time.Millisecond
			when := c.Now().Add(d)
			deadlines[when] = true
			c.AtFunc(when, func(Time) {})
		}
		for i := 0; i < 200; i++ {
			before := c.Now()
			budget := time.Duration(rng.Intn(700)) * time.Millisecond
			got := c.Step(budget)
			if got > budget || got < 0 {
				return false
			}
			// No pending deadline may lie strictly inside the step.
			for when := range deadlines {
				if when > before && when < before.Add(got) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdvanceWithTicker(b *testing.B) {
	c := New()
	n := 0
	c.NewTicker(time.Millisecond, func(Time) { n++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Advance(time.Millisecond)
	}
	_ = n
}

func TestPriorityOrdersSameDeadline(t *testing.T) {
	c := New()
	var order []string
	// Schedule in reverse-priority order to prove priority, not seq, wins.
	c.AtFuncPriority(Time(time.Second), PriorityDump, func(Time) { order = append(order, "dump") })
	c.AtFuncPriority(Time(time.Second), PriorityFlush, func(Time) { order = append(order, "flush") })
	c.AtFuncPriority(Time(time.Second), PrioritySampler, func(Time) { order = append(order, "sample") })
	c.Advance(time.Second)
	if len(order) != 3 || order[0] != "sample" || order[1] != "flush" || order[2] != "dump" {
		t.Fatalf("order = %v, want [sample flush dump]", order)
	}
}

func TestTickerPriorityStableAcrossReschedules(t *testing.T) {
	// A high-priority (late-firing) ticker created first must still fire
	// after a low-priority ticker at every shared deadline, even once
	// both have rescheduled themselves many times.
	c := New()
	var order []string
	c.NewTickerPriority(time.Second, PriorityDump, func(Time) { order = append(order, "dump") })
	c.NewTickerPriority(100*time.Millisecond, PrioritySampler, func(Time) { order = append(order, "s") })
	c.Advance(3 * time.Second)
	count := 0
	for i, ev := range order {
		if ev != "dump" {
			continue
		}
		count++
		// The event just before each dump must be the sampler tick
		// sharing its deadline.
		if i == 0 || order[i-1] != "s" {
			t.Fatalf("dump at index %d not preceded by same-instant sample: %v", i, order)
		}
	}
	if count != 3 {
		t.Fatalf("dumps = %d, want 3", count)
	}
}

// csr.go holds the flat compressed-sparse-row matrix the analysis hot path
// runs on, plus the packed-vector distance kernels that consume it. A CSR
// matrix stores every row's non-zero cells in three shared backing arrays —
// values, column indices, row offsets — so an n×d interval-by-function
// feature matrix costs O(nnz) memory with zero per-row slice headers, instead
// of the n dense rows (plus n slice headers) the [][]float64 form needs.
//
// The kernels obey the same bit-identity contract sparse.go documents: every
// packed kernel returns the EXACT float64 the corresponding dense kernel
// returns on the scattered (densified) operands. Skipped zero-zero terms add
// exactly +0 to the partial sum, surviving terms accumulate in ascending
// column order — the dense loop's order — and a value paired with a zero
// contributes fl((±v)²), which is bit-equal whichever side the zero is on.
// That contract is what lets clustering consume CSR directly while its
// determinism goldens stay byte-identical to the dense path.
package xmath

import "math"

// CSR is a flat compressed-sparse-row float64 matrix: row i's non-zero cells
// are Vals[RowPtr[i]:RowPtr[i+1]] at columns Cols[RowPtr[i]:RowPtr[i+1]]
// (strictly ascending within a row). NumCols fixes the logical width; columns
// absent from a row read as zero.
type CSR struct {
	// NumCols is the logical column count (the feature-space dimension).
	NumCols int
	// Vals holds every row's non-zero values, rows concatenated.
	Vals []float64
	// Cols holds the column index of each value, ascending within a row.
	Cols []int32
	// RowPtr has length NumRows+1; row i spans [RowPtr[i], RowPtr[i+1]).
	RowPtr []int
}

// NumRows returns the number of rows.
func (m *CSR) NumRows() int {
	if len(m.RowPtr) == 0 {
		return 0
	}
	return len(m.RowPtr) - 1
}

// NNZ returns the number of stored (non-zero) cells.
func (m *CSR) NNZ() int { return len(m.Vals) }

// Density returns the stored-cell fraction, 0 for an empty matrix.
func (m *CSR) Density() float64 {
	cells := m.NumRows() * m.NumCols
	if cells == 0 {
		return 0
	}
	return float64(len(m.Vals)) / float64(cells)
}

// Row returns row i's packed values and column indices as views into the
// backing arrays. Callers must not mutate them.
func (m *CSR) Row(i int) ([]float64, []int32) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Vals[lo:hi:hi], m.Cols[lo:hi:hi]
}

// ScatterRow writes row i densely into dst (which must have length NumCols),
// zeroing the untouched columns, and returns dst.
func (m *CSR) ScatterRow(i int, dst []float64) []float64 {
	for j := range dst {
		dst[j] = 0
	}
	vals, cols := m.Row(i)
	for t, c := range cols {
		dst[c] = vals[t]
	}
	return dst
}

// Dense materializes the full dense form — the >50%-density fallback and the
// naive-reference path, not the hot path.
func (m *CSR) Dense() [][]float64 {
	n := m.NumRows()
	rows := make([][]float64, n)
	flat := make([]float64, n*m.NumCols)
	for i := 0; i < n; i++ {
		rows[i] = flat[i*m.NumCols : (i+1)*m.NumCols : (i+1)*m.NumCols]
		m.ScatterRow(i, rows[i])
	}
	return rows
}

// NewCSRFromDense packs dense rows (which must share one length) into CSR
// form. The inverse of Dense up to the dropped explicit zeros.
func NewCSRFromDense(rows [][]float64) *CSR {
	m := &CSR{RowPtr: make([]int, len(rows)+1)}
	if len(rows) > 0 {
		m.NumCols = len(rows[0])
	}
	for i, r := range rows {
		for j, v := range r {
			if v != 0 {
				m.Vals = append(m.Vals, v)
				m.Cols = append(m.Cols, int32(j))
			}
		}
		m.RowPtr[i+1] = len(m.Vals)
	}
	return m
}

// SquaredEuclideanPacked returns the squared L2 distance between two packed
// sparse vectors (values + ascending column indices), bit-identical to
// SquaredEuclidean on their scattered dense forms.
func SquaredEuclideanPacked(av []float64, ac []int32, bv []float64, bc []int32) float64 {
	var s float64
	i, j := 0, 0
	for i < len(ac) && j < len(bc) {
		switch {
		case ac[i] == bc[j]:
			d := av[i] - bv[j]
			s += d * d
			i++
			j++
		case ac[i] < bc[j]:
			d := av[i]
			s += d * d
			i++
		default:
			d := bv[j]
			s += d * d
			j++
		}
	}
	for ; i < len(ac); i++ {
		d := av[i]
		s += d * d
	}
	for ; j < len(bc); j++ {
		d := bv[j]
		s += d * d
	}
	return s
}

// EuclideanPacked is the L2 form of SquaredEuclideanPacked.
func EuclideanPacked(av []float64, ac []int32, bv []float64, bc []int32) float64 {
	return math.Sqrt(SquaredEuclideanPacked(av, ac, bv, bc))
}

// SquaredEuclideanPackedBounded is SquaredEuclideanPacked with the partial-sum
// early exit of SquaredEuclideanBounded: once the accumulated sum reaches
// limit the scan is abandoned, returning (partial, false); a complete scan
// returns (exact, true). Abandoning is exact for the same reason as the dense
// kernel — squared terms are non-negative, so a partial sum at or above limit
// proves the full distance is too. The limit check runs once per 8 surviving
// terms; checkpoint spacing does not affect exactness.
func SquaredEuclideanPackedBounded(av []float64, ac []int32, bv []float64, bc []int32, limit float64) (float64, bool) {
	var s float64
	i, j, n := 0, 0, 0
	for i < len(ac) && j < len(bc) {
		switch {
		case ac[i] == bc[j]:
			d := av[i] - bv[j]
			s += d * d
			i++
			j++
		case ac[i] < bc[j]:
			d := av[i]
			s += d * d
			i++
		default:
			d := bv[j]
			s += d * d
			j++
		}
		if n++; n&7 == 0 && s >= limit {
			return s, false
		}
	}
	for ; i < len(ac); i++ {
		d := av[i]
		s += d * d
		if n++; n&7 == 0 && s >= limit {
			return s, false
		}
	}
	for ; j < len(bc); j++ {
		d := bv[j]
		s += d * d
		if n++; n&7 == 0 && s >= limit {
			return s, false
		}
	}
	if s >= limit {
		return s, false
	}
	return s, true
}

// SquaredEuclideanPackedDense returns the squared L2 distance between a
// packed sparse vector and a dense vector b, bit-identical to
// SquaredEuclidean(scatter(a, len(b)), b). Every column of b contributes in
// ascending order; columns absent from a contribute fl(b[d]²), which is
// bit-equal to the dense loop's fl((0-b[d])²).
func SquaredEuclideanPackedDense(av []float64, ac []int32, b []float64) float64 {
	var s float64
	i := 0
	for d := 0; d < len(b); d++ {
		var t float64
		if i < len(ac) && int(ac[i]) == d {
			t = av[i] - b[d]
			i++
		} else {
			t = b[d]
		}
		s += t * t
	}
	return s
}

// EuclideanPackedDense is the L2 form of SquaredEuclideanPackedDense.
func EuclideanPackedDense(av []float64, ac []int32, b []float64) float64 {
	return math.Sqrt(SquaredEuclideanPackedDense(av, ac, b))
}

// SquaredEuclideanPackedDenseBounded adds the exact partial-sum early exit to
// SquaredEuclideanPackedDense, checking limit once per 8-column block exactly
// like SquaredEuclideanBounded.
func SquaredEuclideanPackedDenseBounded(av []float64, ac []int32, b []float64, limit float64) (float64, bool) {
	var s float64
	i := 0
	d := 0
	for ; d+8 <= len(b); d += 8 {
		for e := d; e < d+8; e++ {
			var t float64
			if i < len(ac) && int(ac[i]) == e {
				t = av[i] - b[e]
				i++
			} else {
				t = b[e]
			}
			s += t * t
		}
		if s >= limit {
			return s, false
		}
	}
	for ; d < len(b); d++ {
		var t float64
		if i < len(ac) && int(ac[i]) == d {
			t = av[i] - b[d]
			i++
		} else {
			t = b[d]
		}
		s += t * t
	}
	return s, true
}

// SquaredEuclideanPackedPadded returns the squared L2 distance between a
// packed sparse vector of logical length dim and a dense vector b that may be
// shorter or longer, treating missing trailing dimensions of either side as
// zero — bit-identical to SquaredEuclideanPadded(scatter(a, dim), b).
func SquaredEuclideanPackedPadded(av []float64, ac []int32, dim int, b []float64) float64 {
	n := dim
	if len(b) > n {
		n = len(b)
	}
	var s float64
	i := 0
	for d := 0; d < n; d++ {
		var bv float64
		if d < len(b) {
			bv = b[d]
		}
		var t float64
		if i < len(ac) && int(ac[i]) == d {
			t = av[i] - bv
			i++
		} else {
			t = bv
		}
		s += t * t
	}
	return s
}

package xmath

import (
	"math"
	"testing"
)

// packedVec builds a deterministic mostly-zero vector and its packed form.
func packedVec(rng *RNG, dim int, density float64) ([]float64, []float64, []int32) {
	dense := make([]float64, dim)
	var vals []float64
	var cols []int32
	for d := 0; d < dim; d++ {
		if rng.Float64() < density {
			v := rng.NormFloat64() * 3
			if v == 0 {
				continue
			}
			dense[d] = v
			vals = append(vals, v)
			cols = append(cols, int32(d))
		}
	}
	return dense, vals, cols
}

func TestPackedKernelsBitIdenticalToDense(t *testing.T) {
	rng := NewRNG(11)
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(64)
		da, av, ac := packedVec(rng, dim, 0.3)
		db, bv, bc := packedVec(rng, dim, 0.3)
		want := SquaredEuclidean(da, db)
		if got := SquaredEuclideanPacked(av, ac, bv, bc); got != want {
			t.Fatalf("trial %d: packed %v != dense %v", trial, got, want)
		}
		if got := SquaredEuclideanPackedDense(av, ac, db); got != want {
			t.Fatalf("trial %d: packed-dense %v != dense %v", trial, got, want)
		}
		if got := EuclideanPacked(av, ac, bv, bc); got != math.Sqrt(want) {
			t.Fatalf("trial %d: EuclideanPacked %v != %v", trial, got, math.Sqrt(want))
		}
		if got := EuclideanPackedDense(av, ac, db); got != math.Sqrt(want) {
			t.Fatalf("trial %d: EuclideanPackedDense %v != %v", trial, got, math.Sqrt(want))
		}
	}
}

func TestPackedBoundedExactness(t *testing.T) {
	rng := NewRNG(23)
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(48)
		da, av, ac := packedVec(rng, dim, 0.4)
		db, bv, bc := packedVec(rng, dim, 0.4)
		exact := SquaredEuclidean(da, db)
		for _, limit := range []float64{0, exact / 2, exact, exact * 2, math.Inf(1)} {
			got, full := SquaredEuclideanPackedBounded(av, ac, bv, bc, limit)
			if full {
				if got != exact {
					t.Fatalf("trial %d: full scan %v != exact %v", trial, got, exact)
				}
				if exact >= limit && limit != 0 {
					t.Fatalf("trial %d: claimed full below limit but exact %v >= limit %v", trial, exact, limit)
				}
			} else if got < limit {
				t.Fatalf("trial %d: abandoned with partial %v < limit %v", trial, got, limit)
			}
			got, full = SquaredEuclideanPackedDenseBounded(av, ac, db, limit)
			if full && got != exact {
				t.Fatalf("trial %d: packed-dense full scan %v != exact %v", trial, got, exact)
			}
			if !full && got < limit {
				t.Fatalf("trial %d: packed-dense abandoned with partial %v < limit %v", trial, got, limit)
			}
		}
	}
}

func TestPackedPaddedMatchesDensePadded(t *testing.T) {
	rng := NewRNG(31)
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(32)
		blen := 1 + rng.Intn(48) // shorter, equal, or longer than dim
		da, av, ac := packedVec(rng, dim, 0.35)
		db := make([]float64, blen)
		for d := range db {
			if rng.Float64() < 0.5 {
				db[d] = rng.NormFloat64()
			}
		}
		want := SquaredEuclideanPadded(da, db)
		if got := SquaredEuclideanPackedPadded(av, ac, dim, db); got != want {
			t.Fatalf("trial %d (dim=%d blen=%d): packed-padded %v != dense %v", trial, dim, blen, got, want)
		}
	}
}

func TestCSRRoundTrip(t *testing.T) {
	rng := NewRNG(5)
	rows := make([][]float64, 17)
	for i := range rows {
		rows[i], _, _ = packedVec(rng, 13, 0.25)
	}
	m := NewCSRFromDense(rows)
	if m.NumRows() != 17 || m.NumCols != 13 {
		t.Fatalf("shape = %dx%d, want 17x13", m.NumRows(), m.NumCols)
	}
	back := m.Dense()
	for i := range rows {
		for j := range rows[i] {
			if back[i][j] != rows[i][j] {
				t.Fatalf("round trip differs at (%d,%d): %v != %v", i, j, back[i][j], rows[i][j])
			}
		}
	}
	buf := make([]float64, m.NumCols)
	for i := range rows {
		m.ScatterRow(i, buf)
		for j := range rows[i] {
			if buf[j] != rows[i][j] {
				t.Fatalf("ScatterRow(%d) differs at %d", i, j)
			}
		}
		vals, cols := m.Row(i)
		for t2, c := range cols {
			if vals[t2] != rows[i][c] {
				t.Fatalf("Row(%d) val at col %d = %v, want %v", i, c, vals[t2], rows[i][c])
			}
		}
	}
	var empty CSR
	if empty.NumRows() != 0 || empty.NNZ() != 0 || empty.Density() != 0 {
		t.Fatal("zero CSR should be an empty matrix")
	}
}

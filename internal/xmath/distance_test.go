package xmath

import (
	"math"
	"testing"
)

func TestEuclideanPaddedMatchesEuclideanOnEqualLengths(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 6, 3}
	if got, want := EuclideanPadded(a, b), Euclidean(a, b); got != want {
		t.Fatalf("EuclideanPadded = %v, Euclidean = %v", got, want)
	}
}

func TestEuclideanPaddedTreatsMissingDimsAsZero(t *testing.T) {
	long := []float64{3, 4, 5}
	short := []float64{3, 4}
	want := math.Sqrt(25)
	if got := EuclideanPadded(long, short); got != want {
		t.Fatalf("EuclideanPadded(long, short) = %v, want %v", got, want)
	}
	// Argument order must not matter: the shorter vector is padded
	// whichever side it is on.
	if got := EuclideanPadded(short, long); got != want {
		t.Fatalf("EuclideanPadded(short, long) = %v, want %v", got, want)
	}
}

func TestSquaredEuclideanPaddedEmptyAndNil(t *testing.T) {
	if got := SquaredEuclideanPadded(nil, nil); got != 0 {
		t.Fatalf("nil/nil = %v", got)
	}
	if got := SquaredEuclideanPadded([]float64{2}, nil); got != 4 {
		t.Fatalf("[2]/nil = %v", got)
	}
}

// The dedup satellite's guard: the shared kernel on equal-length vectors
// must not regress the tracker's hot path (compare with BenchmarkObserve in
// internal/online).
func BenchmarkEuclideanPaddedEqualLen(b *testing.B) {
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(64 - i)
	}
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += EuclideanPadded(x, y)
	}
	_ = s
}

func BenchmarkEuclideanPaddedShortCentroid(b *testing.B) {
	x := make([]float64, 64)
	y := make([]float64, 40) // centroid lagging behind a grown space
	for i := range x {
		x[i] = float64(i)
	}
	for i := range y {
		y[i] = float64(40 - i)
	}
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += EuclideanPadded(x, y)
	}
	_ = s
}

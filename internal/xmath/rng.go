// Package xmath provides the small numeric building blocks shared across the
// IncProf reproduction: a fast seedable RNG (used by workload generators and
// k-means++ initialization), streaming statistics, distance functions, and
// vector helpers.
//
// Everything here is deterministic given a seed; no package-level mutable
// state is used, so concurrent ranks can each hold their own RNG.
package xmath

import "math"

// RNG is a xoshiro256** pseudo-random generator seeded via SplitMix64.
// It is small, fast, and deterministic across platforms, which the test and
// benchmark harnesses rely on. It is not safe for concurrent use.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given value. Any seed,
// including zero, yields a well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed using SplitMix64 expansion.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xmath: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit random integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements via the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator from the current stream; useful for
// giving each MPI rank its own deterministic stream from one master seed.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// sparse.go holds the sparse-vector distance kernels the clustering hot path
// runs on. Interval-by-function feature matrices are mostly zeros (a function
// is active in a few phases, silent elsewhere), so distances between rows can
// skip the dimensions where both operands are zero.
//
// Bit-identity contract: every kernel here returns the EXACT float64 the
// corresponding dense kernel returns, not an approximation. Two facts make
// that possible:
//
//   - A skipped term is exactly zero: when a[i] and b[i] are both zero the
//     dense loop adds (0-0)² = +0, and fl(s + 0) == s for every partial sum s
//     the loop can produce (s is never -0, because squared terms are
//     non-negative and the accumulator starts at +0).
//   - The surviving terms are accumulated in ascending index order — the same
//     order the dense loop uses — so rounding is identical step for step.
//
// This is why the clustering code can run sparse end-to-end while its
// determinism goldens (serial/parallel, batch/live) stay byte-identical.
package xmath

import "math"

// NonZeroIndices appends the indices of v's non-zero entries to buf (in
// ascending order) and returns it. Pass a reused buffer to avoid allocation;
// pass nil to let it allocate.
func NonZeroIndices(v []float64, buf []int32) []int32 {
	for i, x := range v {
		if x != 0 {
			buf = append(buf, int32(i))
		}
	}
	return buf
}

// SquaredEuclideanSparse returns SquaredEuclidean(a, b) touching only the
// dimensions listed in ai and bi — the sorted non-zero index sets of a and b
// (see NonZeroIndices). The result is bit-identical to the dense kernel.
func SquaredEuclideanSparse(a []float64, ai []int32, b []float64, bi []int32) float64 {
	var s float64
	i, j := 0, 0
	for i < len(ai) && j < len(bi) {
		switch {
		case ai[i] == bi[j]:
			d := a[ai[i]] - b[bi[j]]
			s += d * d
			i++
			j++
		case ai[i] < bi[j]:
			d := a[ai[i]]
			s += d * d
			i++
		default:
			d := b[bi[j]]
			s += d * d
			j++
		}
	}
	for ; i < len(ai); i++ {
		d := a[ai[i]]
		s += d * d
	}
	for ; j < len(bi); j++ {
		d := b[bi[j]]
		s += d * d
	}
	return s
}

// EuclideanSparse is the L2 form of SquaredEuclideanSparse, bit-identical to
// Euclidean on the dense vectors.
func EuclideanSparse(a []float64, ai []int32, b []float64, bi []int32) float64 {
	return math.Sqrt(SquaredEuclideanSparse(a, ai, b, bi))
}

// SquaredEuclideanBounded accumulates SquaredEuclidean(a, b) but abandons the
// scan once the partial sum reaches limit, returning (partial, false). A
// complete scan returns (exact distance, true).
//
// Abandoning is exact, not heuristic: squared terms are non-negative, and
// adding a non-negative float to a partial sum can never decrease it (the
// nearest float to s+t with t >= 0 is >= s), so partial >= limit proves the
// full distance is >= limit. Callers comparing distances against a current
// best with a strict < therefore make exactly the decisions the full
// computation would. The limit check runs once per 8-dimension block to keep
// the inner loop tight; any checkpoint spacing preserves exactness.
func SquaredEuclideanBounded(a, b []float64, limit float64) (float64, bool) {
	if len(a) != len(b) {
		panic("xmath: dimension mismatch")
	}
	var s float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		for j := i; j < i+8; j++ {
			d := a[j] - b[j]
			s += d * d
		}
		if s >= limit {
			return s, false
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s, true
}

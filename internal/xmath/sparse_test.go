package xmath

import (
	"math"
	"testing"
)

// sparseVec builds a vector with the given density, mixing positive, negative
// and exactly-zero entries, plus its non-zero index list.
func sparseVec(rng *RNG, n int, density float64) ([]float64, []int32) {
	v := make([]float64, n)
	for i := range v {
		if rng.Float64() < density {
			v[i] = rng.NormFloat64() * 10
		}
	}
	return v, NonZeroIndices(v, nil)
}

func TestSquaredEuclideanSparseBitIdentical(t *testing.T) {
	rng := NewRNG(1)
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(64)
		a, ai := sparseVec(rng, n, 0.3)
		b, bi := sparseVec(rng, n, 0.3)
		want := SquaredEuclidean(a, b)
		got := SquaredEuclideanSparse(a, ai, b, bi)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: sparse %v (%b) != dense %v (%b)", trial, got, got, want, want)
		}
		if ew, eg := Euclidean(a, b), EuclideanSparse(a, ai, b, bi); math.Float64bits(eg) != math.Float64bits(ew) {
			t.Fatalf("trial %d: EuclideanSparse %v != Euclidean %v", trial, eg, ew)
		}
	}
}

func TestSquaredEuclideanSparseEdgeCases(t *testing.T) {
	// All-zero vs all-zero, all-zero vs dense, disjoint supports.
	zero := make([]float64, 8)
	dense := []float64{1, -2, 3, -4, 5, -6, 7, -8}
	di := NonZeroIndices(dense, nil)
	if got := SquaredEuclideanSparse(zero, nil, zero, nil); got != 0 {
		t.Fatalf("zero/zero = %v", got)
	}
	want := SquaredEuclidean(zero, dense)
	if got := SquaredEuclideanSparse(zero, nil, dense, di); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("zero/dense = %v, want %v", got, want)
	}
	a := []float64{1, 0, 2, 0}
	b := []float64{0, 3, 0, 4}
	want = SquaredEuclidean(a, b)
	got := SquaredEuclideanSparse(a, NonZeroIndices(a, nil), b, NonZeroIndices(b, nil))
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("disjoint = %v, want %v", got, want)
	}
}

// TestSquaredEuclideanBoundedExact pins the early-exit contract: a completed
// scan returns the exact dense distance; an abandoned scan returns a partial
// sum that is >= limit AND <= the true distance (monotone non-negative
// accumulation), proving the true distance also exceeds the limit.
func TestSquaredEuclideanBoundedExact(t *testing.T) {
	rng := NewRNG(2)
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(40)
		a, _ := sparseVec(rng, n, 0.6)
		b, _ := sparseVec(rng, n, 0.6)
		exact := SquaredEuclidean(a, b)
		for _, limit := range []float64{0, exact / 2, exact, exact * 2, math.Inf(1)} {
			got, full := SquaredEuclideanBounded(a, b, limit)
			if full {
				if math.Float64bits(got) != math.Float64bits(exact) {
					t.Fatalf("trial %d: full scan %v != exact %v", trial, got, exact)
				}
				continue
			}
			if got < limit {
				t.Fatalf("trial %d: abandoned with partial %v < limit %v", trial, got, limit)
			}
			if got > exact {
				t.Fatalf("trial %d: partial %v exceeds exact %v", trial, got, exact)
			}
		}
	}
}

func TestNonZeroIndicesReusesBuffer(t *testing.T) {
	buf := make([]int32, 0, 16)
	v := []float64{0, 1, 0, -2, 0}
	got := NonZeroIndices(v, buf)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("indices = %v", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("buffer not reused")
	}
}

package xmath

import (
	"math"
	"sort"
)

// Welford accumulates a streaming mean and variance without storing samples.
// The zero value is an empty accumulator.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples folded in.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance, or 0 with fewer than 2 samples.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the unbiased sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample, or 0 for an empty accumulator.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample, or 0 for an empty accumulator.
func (w *Welford) Max() float64 { return w.max }

// Sum returns mean*n, the total of the samples.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Merge folds another accumulator into w (parallel-combine form), used to
// aggregate per-rank statistics.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	min := w.min
	if o.min < min {
		min = o.min
	}
	max := w.max
	if o.max > max {
		max = o.max
	}
	*w = Welford{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice and
// does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("xmath: Percentile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Euclidean returns the L2 distance between equal-length vectors.
// It panics on length mismatch.
func Euclidean(a, b []float64) float64 {
	return math.Sqrt(SquaredEuclidean(a, b))
}

// SquaredEuclidean returns the squared L2 distance between equal-length
// vectors; it is the distance k-means minimizes. It panics on mismatch.
func SquaredEuclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("xmath: dimension mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// EuclideanPadded returns the L2 distance between vectors that may differ in
// length, treating the missing trailing dimensions of the shorter vector as
// zero. Growing feature spaces (the online tracker, the streaming engine's
// matrix builder) pad centroids lazily, so their hot paths compare vectors of
// unequal length; for equal lengths it is exactly Euclidean.
func EuclideanPadded(a, b []float64) float64 {
	return math.Sqrt(SquaredEuclideanPadded(a, b))
}

// SquaredEuclideanPadded is EuclideanPadded without the square root.
func SquaredEuclideanPadded(a, b []float64) float64 {
	if len(a) < len(b) {
		a, b = b, a
	}
	var s float64
	for i, av := range a {
		var bv float64
		if i < len(b) {
			bv = b[i]
		}
		d := av - bv
		s += d * d
	}
	return s
}

// ArgMin returns the index of the smallest element, or -1 for empty input.
// Ties resolve to the first occurrence.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element, or -1 for empty input.
// Ties resolve to the first occurrence.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the average of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/64 times", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(9)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Float64())
	}
	if m := w.Mean(); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", m)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", w.Mean())
	}
	if math.Abs(w.Stddev()-1) > 0.02 {
		t.Fatalf("normal stddev = %v, want ~1", w.Stddev())
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.ExpFloat64())
	}
	if math.Abs(w.Mean()-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", w.Mean())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(5)
	a := r.Fork()
	b := r.Fork()
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("forked streams identical")
	}
}

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if m := w.Mean(); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := w.Var(); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want 32/7", v)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
	if w.Sum() != 40 {
		t.Fatalf("Sum = %v, want 40", w.Sum())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Stddev() != 0 {
		t.Fatal("empty Welford not zero")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(xs, ys []float64) bool {
		trim := func(s []float64) []float64 {
			out := s
			if len(out) > 64 {
				out = out[:64]
			}
			for i, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
					out[i] = float64(i)
				}
			}
			return out
		}
		xs, ys = trim(xs), trim(ys)
		var a, b, all Welford
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-6 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Must not modify input.
	unsorted := []float64{5, 1, 3}
	Percentile(unsorted, 0.5)
	if unsorted[0] != 5 {
		t.Fatal("Percentile sorted its input in place")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Percentile(nil, 0.5)
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Euclidean(a, b); got != 5 {
		t.Fatalf("Euclidean = %v", got)
	}
	if got := SquaredEuclidean(a, b); got != 25 {
		t.Fatalf("SquaredEuclidean = %v", got)
	}
}

func TestDistanceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2})
}

func TestArgMinArgMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := ArgMin(xs); got != 1 {
		t.Fatalf("ArgMin = %d, want first tie index 1", got)
	}
	if got := ArgMax(xs); got != 4 {
		t.Fatalf("ArgMax = %d", got)
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("empty ArgMin/ArgMax should be -1")
	}
}

func TestSumMeanClamp(t *testing.T) {
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Fatal("Sum")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp")
	}
}

// Property: Euclidean satisfies the triangle inequality.
func TestPropertyTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := []float64{float64(ax), float64(ay)}
		b := []float64{float64(bx), float64(by)}
		c := []float64{float64(cx), float64(cy)}
		return Euclidean(a, c) <= Euclidean(a, b)+Euclidean(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkSquaredEuclidean64D(b *testing.B) {
	r := NewRNG(1)
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i], y[i] = r.Float64(), r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SquaredEuclidean(x, y)
	}
}
